//! bench_compare — diff two `BENCH_exp01.json` snapshots on their
//! *deterministic* fields and fail on drift.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json>
//! ```
//!
//! The simulation is seeded end to end, so `rounds`, `drops`, `max_load`
//! and `verified` must be bit-identical between a committed snapshot and a
//! fresh run of the same tree — any difference means the engine's
//! semantics changed (or determinism broke) and the perf-trajectory
//! history would silently fork. Wall-clock is intentionally *not*
//! compared; this is a semantic regression gate, not a timing gate
//! (see the `bench-gate` CI job, which runs `bench.sh --compare`).
//!
//! Prints a per-metric delta table and exits non-zero on any drift,
//! missing record, or record-set mismatch.

use std::process::ExitCode;

#[derive(serde::Deserialize)]
struct Record {
    problem: String,
    n: usize,
    a: usize,
    rounds: u64,
    drops: u64,
    max_load: u64,
    bound: f64,
    ratio: f64,
    verified: bool,
}

#[derive(serde::Deserialize)]
struct Snapshot {
    experiment: String,
    seed: u64,
    records: Vec<Record>,
}

fn load(path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_compare: cannot read {path}: {e}"));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench_compare: cannot parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);

    fn check(drift: &mut usize, label: String, base: String, new: String) {
        let ok = base == new;
        if !ok {
            *drift += 1;
        }
        println!(
            "| {label:<24} | {base:>12} | {new:>12} | {} |",
            if ok { "  =  " } else { "DRIFT" }
        );
    }
    let mut drift = 0usize;

    println!("# bench_compare: {baseline_path} vs {fresh_path}");
    println!("| metric                   |     baseline |        fresh |  Δ?   |");
    println!("|--------------------------|--------------|--------------|-------|");
    check(
        &mut drift,
        "experiment".into(),
        baseline.experiment.clone(),
        fresh.experiment.clone(),
    );
    check(
        &mut drift,
        "seed".into(),
        baseline.seed.to_string(),
        fresh.seed.to_string(),
    );
    check(
        &mut drift,
        "record count".into(),
        baseline.records.len().to_string(),
        fresh.records.len().to_string(),
    );

    for base in &baseline.records {
        let key = format!("{}/n={}", base.problem, base.n);
        let Some(new) = fresh
            .records
            .iter()
            .find(|r| r.problem == base.problem && r.n == base.n && r.a == base.a)
        else {
            println!(
                "| {key:<24} | {:>12} | {:>12} | DRIFT |",
                "present", "MISSING"
            );
            drift += 1;
            continue;
        };
        check(
            &mut drift,
            format!("{key} rounds"),
            base.rounds.to_string(),
            new.rounds.to_string(),
        );
        check(
            &mut drift,
            format!("{key} drops"),
            base.drops.to_string(),
            new.drops.to_string(),
        );
        check(
            &mut drift,
            format!("{key} max_load"),
            base.max_load.to_string(),
            new.max_load.to_string(),
        );
        check(
            &mut drift,
            format!("{key} verified"),
            base.verified.to_string(),
            new.verified.to_string(),
        );
        // bound/ratio are derived from rounds and a fixed formula; a drift
        // there without a rounds drift would mean the formula changed —
        // worth flagging, but compared coarsely to dodge float formatting.
        check(
            &mut drift,
            format!("{key} bound"),
            format!("{:.3}", base.bound),
            format!("{:.3}", new.bound),
        );
        let _ = base.ratio;
    }

    if drift == 0 {
        println!("\nOK: all deterministic metrics identical.");
        ExitCode::SUCCESS
    } else {
        println!("\nFAIL: {drift} metric(s) drifted from the committed snapshot.");
        println!("If the change is intentional, regenerate with ./bench.sh and commit the new BENCH_exp01.json.");
        ExitCode::FAILURE
    }
}
