//! bench_compare — diff two `BENCH_*.json` snapshots and fail on drift.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json>
//! ```
//!
//! Schema-agnostic: both files are loaded as JSON value trees and compared
//! structurally, so the same gate covers `BENCH_exp01.json` (per-problem
//! records) and `BENCH_suite.json` (full `RunRecord`s with scenario echoes
//! and stage breakdowns) — and any future snapshot, without a
//! per-experiment mirror struct.
//!
//! Every field in these snapshots is *deterministic* (the simulation is
//! seeded end to end and records carry no wall-clock), so any difference
//! means the engine's semantics changed or determinism broke and the
//! perf-trajectory history would silently fork. Numeric values compare
//! across integer/float representation; everything else must be
//! identical. Prints a per-record summary plus the first drifted leaves,
//! and exits non-zero on any drift.
//!
//! Records are matched by *identity* (problem/algorithm + scenario echo),
//! not by position: a record present only in the fresh snapshot is an
//! **addition** (a newly registered algorithm or scenario — reported as
//! `NEW`, not drift), while a record that disappeared from the fresh
//! snapshot is a failure (`GONE`) — suites may grow, never silently
//! shrink.
//!
//! **Wall-clock snapshots are exempt from the drift gate.** A snapshot
//! whose top level carries `"wall_clock": true` (e.g. `BENCH_serve.json`,
//! whose throughput and latency numbers depend on the machine) is
//! *reported* — headline scalars printed side by side — but never gated:
//! timing is not deterministic, so drift there is expected. The marker is
//! schema-level, not filename-level, so new wall-clock experiments opt in
//! by setting the field rather than by editing `bench.sh`. Correctness is
//! still enforced: a `Failed` verdict anywhere in a wall-clock snapshot
//! fails the gate, and a marker present on only one side is a schema
//! mismatch and fails too.

use std::process::ExitCode;

use serde::Value;

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_compare: cannot read {path}: {e}"));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench_compare: cannot parse {path}: {e:?}"))
}

/// Numeric-aware leaf equality: `5`, `5.0` and `-5 as I64` agree.
fn leaf_eq(a: &Value, b: &Value) -> bool {
    fn as_f64(v: &Value) -> Option<f64> {
        match v {
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }
    match (as_f64(a), as_f64(b)) {
        (Some(x), Some(y)) => x == y || (x.is_nan() && y.is_nan()),
        _ => a == b,
    }
}

/// Collects `path: baseline != fresh` descriptions for every drifted leaf.
fn diff(a: &Value, b: &Value, path: &str, out: &mut Vec<String>) {
    match (a, b) {
        (Value::Map(ma), Value::Map(mb)) => {
            for (k, va) in ma {
                match mb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff(va, vb, &format!("{path}.{k}"), out),
                    None => out.push(format!("{path}.{k}: missing in fresh")),
                }
            }
            for (k, _) in mb {
                if !ma.iter().any(|(ka, _)| ka == k) {
                    out.push(format!("{path}.{k}: missing in baseline"));
                }
            }
        }
        (Value::Seq(sa), Value::Seq(sb)) => {
            if sa.len() != sb.len() {
                out.push(format!("{path}: length {} vs {}", sa.len(), sb.len()));
            }
            for (i, (va, vb)) in sa.iter().zip(sb.iter()).enumerate() {
                diff(va, vb, &format!("{path}[{i}]"), out);
            }
        }
        _ => {
            if !leaf_eq(a, b) {
                out.push(format!("{path}: {} vs {}", render(a), render(b)));
            }
        }
    }
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "?".into())
}

/// Short human label for one record: its first few scalar string/number
/// fields (`problem`/`algorithm`, `n`, ...) or the index alone.
fn record_label(rec: &Value, idx: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Value::Map(m) = rec {
        for key in ["problem", "algorithm", "n"] {
            if let Some((_, v)) = m.iter().find(|(k, _)| k == key) {
                match v {
                    Value::Str(s) => parts.push(s.clone()),
                    Value::U64(x) => parts.push(format!("{key}={x}")),
                    _ => {}
                }
            }
        }
        // RunRecords keep n inside the scenario echo
        if let Some((_, Value::Map(scn))) = m.iter().find(|(k, _)| k == "scenario") {
            if let Some((_, Value::U64(n))) = scn.iter().find(|(k, _)| k == "n") {
                parts.push(format!("n={n}"));
            }
        }
    }
    if parts.is_empty() {
        format!("record[{idx}]")
    } else {
        format!("record[{idx}] {}", parts.join("/"))
    }
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// The identity a record is matched across snapshots by: which
/// problem/algorithm ran on which scenario. Deliberately excludes every
/// result field, so a record keeps its identity when its numbers move.
fn identity(rec: &Value) -> String {
    let mut parts: Vec<String> = Vec::new();
    for key in ["problem", "algorithm"] {
        if let Some(Value::Str(s)) = get(rec, key) {
            parts.push(s.clone());
        }
    }
    // exp01 keys scenarios by bare n; suite records carry a scenario echo
    if let Some(v) = get(rec, "n") {
        parts.push(format!("n={}", render(v)));
    }
    if let Some(v) = get(rec, "scenario") {
        parts.push(render(v));
    }
    if parts.is_empty() {
        render(rec)
    } else {
        parts.join("|")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);

    println!("# bench_compare: {baseline_path} vs {fresh_path}");
    for key in ["experiment", "seed"] {
        println!(
            "{key:<12} baseline={} fresh={}",
            get(&baseline, key).map_or("<none>".into(), render),
            get(&fresh, key).map_or("<none>".into(), render)
        );
    }

    let wall = |v: &Value| matches!(get(v, "wall_clock"), Some(Value::Bool(true)));
    match (wall(&baseline), wall(&fresh)) {
        (true, true) => return compare_wall_clock(&baseline, &fresh),
        (false, false) => {}
        (b, f) => {
            println!(
                "\nFAIL: wall_clock marker on one side only (baseline={b}, fresh={f}) — \
                 snapshot schemas disagree."
            );
            return ExitCode::FAILURE;
        }
    }

    let empty = Vec::new();
    let base_records = match get(&baseline, "records") {
        Some(Value::Seq(s)) => s,
        _ => &empty,
    };
    let fresh_records = match get(&fresh, "records") {
        Some(Value::Seq(s)) => s,
        _ => &empty,
    };

    let mut drifted: Vec<String> = Vec::new();
    // top-level scalar drift (experiment name, seed, record count)
    for key in ["experiment", "seed"] {
        match (get(&baseline, key), get(&fresh, key)) {
            (Some(a), Some(b)) => diff(a, b, key, &mut drifted),
            (None, None) => {}
            _ => drifted.push(format!("{key}: present on one side only")),
        }
    }
    // `rounds` is the headline metric: per record, a *decrease* is an
    // improvement (allowed — refresh the snapshot with `./bench.sh --bless`
    // to adopt it), an *increase* is a perf regression and fails the gate,
    // and at unchanged rounds every other deterministic field must be
    // byte-stable. Correctness verdicts may never degrade either way.
    // Records are paired by identity; fresh-only records are additions.
    let mut improved = 0usize;
    let mut added = 0usize;
    let mut fresh_used = vec![false; fresh_records.len()];
    println!(
        "\n| record                                   | rounds base→fresh  |    Δ    | status |"
    );
    println!(
        "|------------------------------------------|--------------------|---------|--------|"
    );
    for (i, b) in base_records.iter().enumerate() {
        let label = record_label(b, i);
        let id = identity(b);
        let Some(j) = fresh_records
            .iter()
            .enumerate()
            .position(|(j, f)| !fresh_used[j] && identity(f) == id)
        else {
            drifted.push(format!("{label}: removed from fresh snapshot"));
            println!(
                "| {:<40} | {:>8} → {:>7} | {:>7} | {:<6} |",
                label,
                rounds_of(b).map_or("-".into(), |r| r.to_string()),
                "-",
                "-",
                "GONE"
            );
            continue;
        };
        fresh_used[j] = true;
        let f = &fresh_records[j];
        if let Some(bad) = verdict_degraded(b, f) {
            drifted.push(format!("{label}: {bad}"));
        }
        let (rb, rf) = (rounds_of(b), rounds_of(f));
        let (delta_col, status) = match (rb, rf) {
            (Some(rb), Some(rf)) if rf < rb => {
                improved += 1;
                let pct = 100.0 * (rf as f64 - rb as f64) / rb as f64;
                (format!("{pct:+6.1}%"), "faster")
            }
            (Some(rb), Some(rf)) if rf > rb => {
                drifted.push(format!(
                    "{label}: rounds regressed {rb} -> {rf} (+{})",
                    rf - rb
                ));
                (format!("+{}", rf - rb), "REGR")
            }
            _ => {
                // equal rounds (or no rounds field): full structural diff
                let mut local: Vec<String> = Vec::new();
                diff(b, f, &label, &mut local);
                let status = if local.is_empty() { "=" } else { "DRIFT" };
                drifted.extend(local);
                ("=".to_string(), status)
            }
        };
        println!(
            "| {:<40} | {:>8} → {:>7} | {:>7} | {:<6} |",
            label,
            rb.map_or("-".into(), |r| r.to_string()),
            rf.map_or("-".into(), |r| r.to_string()),
            delta_col,
            status
        );
    }
    // fresh-only records: new algorithms/scenarios joined the suite — an
    // addition to adopt via `--bless`, not drift
    for (j, f) in fresh_records.iter().enumerate() {
        if fresh_used[j] {
            continue;
        }
        added += 1;
        println!(
            "| {:<40} | {:>8} → {:>7} | {:>7} | {:<6} |",
            record_label(f, j),
            "-",
            rounds_of(f).map_or("-".into(), |r| r.to_string()),
            "-",
            "NEW"
        );
    }

    if drifted.is_empty() {
        match (improved, added) {
            (0, 0) => println!("\nOK: all deterministic metrics identical."),
            _ => println!(
                "\nOK: {improved} record(s) improved, {added} added, none regressed.\n\
                 Adopt the new numbers with `./bench.sh --bless` and commit the refreshed snapshots."
            ),
        }
        ExitCode::SUCCESS
    } else {
        println!(
            "\nFAIL: {} regression(s)/drift(s) against the committed snapshot:",
            drifted.len()
        );
        for line in drifted.iter().take(25) {
            println!("  {line}");
        }
        if drifted.len() > 25 {
            println!("  ... and {} more", drifted.len() - 25);
        }
        println!("If the change is intentional, regenerate with `./bench.sh --bless` and commit the new snapshots.");
        ExitCode::FAILURE
    }
}

/// Reporting-only path for `"wall_clock": true` snapshots: prints the
/// top-level scalars side by side (throughput, latency percentiles) and
/// enforces only correctness — a `Failed` verdict anywhere in the fresh
/// tree fails; timing drift never does.
fn compare_wall_clock(baseline: &Value, fresh: &Value) -> ExitCode {
    println!("\nwall-clock snapshot (`wall_clock: true`): reported, not drift-gated.");
    if let (Value::Map(mb), Value::Map(mf)) = (baseline, fresh) {
        for (k, vb) in mb {
            if matches!(vb, Value::Map(_) | Value::Seq(_)) {
                continue;
            }
            let vf = mf.iter().find(|(kf, _)| kf == k).map(|(_, v)| v);
            println!(
                "  {k:<20} baseline={} fresh={}",
                render(vb),
                vf.map_or("<none>".into(), render)
            );
        }
    }
    let mut failed: Vec<String> = Vec::new();
    scan_failed_verdicts(fresh, "fresh", &mut failed);
    if failed.is_empty() {
        println!("\nOK: no Failed verdicts; timing fields are machine-dependent and not gated.");
        ExitCode::SUCCESS
    } else {
        println!(
            "\nFAIL: {} Failed verdict(s) in the fresh snapshot:",
            failed.len()
        );
        for line in failed.iter().take(25) {
            println!("  {line}");
        }
        ExitCode::FAILURE
    }
}

/// Walks the whole value tree looking for `"verdict": "Failed"` leaves.
fn scan_failed_verdicts(v: &Value, path: &str, out: &mut Vec<String>) {
    match v {
        Value::Map(m) => {
            for (k, vv) in m {
                if k == "verdict" {
                    if let Value::Str(s) = vv {
                        if s == "Failed" {
                            out.push(format!("{path}.verdict = Failed"));
                        }
                    }
                }
                scan_failed_verdicts(vv, &format!("{path}.{k}"), out);
            }
        }
        Value::Seq(s) => {
            for (i, vv) in s.iter().enumerate() {
                scan_failed_verdicts(vv, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// The record's headline `rounds` counter, if it has one.
fn rounds_of(rec: &Value) -> Option<u64> {
    match get(rec, "rounds") {
        Some(Value::U64(r)) => Some(*r),
        Some(Value::I64(r)) if *r >= 0 => Some(*r as u64),
        _ => None,
    }
}

/// Checks that a record's correctness verdict did not degrade: `verdict`
/// (RunRecord) may not become `Failed`, nor drop from `Verified` to
/// anything weaker; `verified` (exp01) may not become `false`. Checked on
/// every record regardless of the rounds delta. Returns a description of
/// the degradation, if any.
fn verdict_degraded(base: &Value, fresh: &Value) -> Option<String> {
    match (get(base, "verdict"), get(fresh, "verdict")) {
        (Some(Value::Str(b)), Some(Value::Str(f)))
            if f != b && (f == "Failed" || b == "Verified") =>
        {
            return Some(format!("verdict degraded: {b} -> {f}"));
        }
        _ => {}
    }
    match (get(base, "verified"), get(fresh, "verified")) {
        (Some(Value::Bool(true)), Some(Value::Bool(false))) => {
            Some("verified degraded: true -> false".to_string())
        }
        _ => None,
    }
}
