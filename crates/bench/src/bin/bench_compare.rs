//! bench_compare — diff two `BENCH_*.json` snapshots and fail on drift.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json>
//! ```
//!
//! Schema-agnostic: both files are loaded as JSON value trees and compared
//! structurally, so the same gate covers `BENCH_exp01.json` (per-problem
//! records) and `BENCH_suite.json` (full `RunRecord`s with scenario echoes
//! and stage breakdowns) — and any future snapshot, without a
//! per-experiment mirror struct.
//!
//! Every field in these snapshots is *deterministic* (the simulation is
//! seeded end to end and records carry no wall-clock), so any difference
//! means the engine's semantics changed or determinism broke and the
//! perf-trajectory history would silently fork. Numeric values compare
//! across integer/float representation; everything else must be
//! identical. Prints a per-record summary plus the first drifted leaves,
//! and exits non-zero on any drift.

use std::process::ExitCode;

use serde::Value;

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_compare: cannot read {path}: {e}"));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench_compare: cannot parse {path}: {e:?}"))
}

/// Numeric-aware leaf equality: `5`, `5.0` and `-5 as I64` agree.
fn leaf_eq(a: &Value, b: &Value) -> bool {
    fn as_f64(v: &Value) -> Option<f64> {
        match v {
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }
    match (as_f64(a), as_f64(b)) {
        (Some(x), Some(y)) => x == y || (x.is_nan() && y.is_nan()),
        _ => a == b,
    }
}

/// Collects `path: baseline != fresh` descriptions for every drifted leaf.
fn diff(a: &Value, b: &Value, path: &str, out: &mut Vec<String>) {
    match (a, b) {
        (Value::Map(ma), Value::Map(mb)) => {
            for (k, va) in ma {
                match mb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff(va, vb, &format!("{path}.{k}"), out),
                    None => out.push(format!("{path}.{k}: missing in fresh")),
                }
            }
            for (k, _) in mb {
                if !ma.iter().any(|(ka, _)| ka == k) {
                    out.push(format!("{path}.{k}: missing in baseline"));
                }
            }
        }
        (Value::Seq(sa), Value::Seq(sb)) => {
            if sa.len() != sb.len() {
                out.push(format!("{path}: length {} vs {}", sa.len(), sb.len()));
            }
            for (i, (va, vb)) in sa.iter().zip(sb.iter()).enumerate() {
                diff(va, vb, &format!("{path}[{i}]"), out);
            }
        }
        _ => {
            if !leaf_eq(a, b) {
                out.push(format!("{path}: {} vs {}", render(a), render(b)));
            }
        }
    }
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "?".into())
}

/// Short human label for one record: its first few scalar string/number
/// fields (`problem`/`algorithm`, `n`, ...) or the index alone.
fn record_label(rec: &Value, idx: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Value::Map(m) = rec {
        for key in ["problem", "algorithm", "n"] {
            if let Some((_, v)) = m.iter().find(|(k, _)| k == key) {
                match v {
                    Value::Str(s) => parts.push(s.clone()),
                    Value::U64(x) => parts.push(format!("{key}={x}")),
                    _ => {}
                }
            }
        }
        // RunRecords keep n inside the scenario echo
        if let Some((_, Value::Map(scn))) = m.iter().find(|(k, _)| k == "scenario") {
            if let Some((_, Value::U64(n))) = scn.iter().find(|(k, _)| k == "n") {
                parts.push(format!("n={n}"));
            }
        }
    }
    if parts.is_empty() {
        format!("record[{idx}]")
    } else {
        format!("record[{idx}] {}", parts.join("/"))
    }
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);

    println!("# bench_compare: {baseline_path} vs {fresh_path}");
    for key in ["experiment", "seed"] {
        println!(
            "{key:<12} baseline={} fresh={}",
            get(&baseline, key).map_or("<none>".into(), render),
            get(&fresh, key).map_or("<none>".into(), render)
        );
    }

    let empty = Vec::new();
    let base_records = match get(&baseline, "records") {
        Some(Value::Seq(s)) => s,
        _ => &empty,
    };
    let fresh_records = match get(&fresh, "records") {
        Some(Value::Seq(s)) => s,
        _ => &empty,
    };

    let mut drifted: Vec<String> = Vec::new();
    // top-level scalar drift (experiment name, seed, record count)
    for key in ["experiment", "seed"] {
        match (get(&baseline, key), get(&fresh, key)) {
            (Some(a), Some(b)) => diff(a, b, key, &mut drifted),
            (None, None) => {}
            _ => drifted.push(format!("{key}: present on one side only")),
        }
    }
    if base_records.len() != fresh_records.len() {
        drifted.push(format!(
            "records: count {} vs {}",
            base_records.len(),
            fresh_records.len()
        ));
    }

    println!("\n| record                                   | fields drifted |  Δ?   |");
    println!("|------------------------------------------|----------------|-------|");
    for (i, (b, f)) in base_records.iter().zip(fresh_records.iter()).enumerate() {
        let mut local: Vec<String> = Vec::new();
        diff(b, f, &record_label(b, i), &mut local);
        println!(
            "| {:<40} | {:>14} | {} |",
            record_label(b, i),
            local.len(),
            if local.is_empty() { "  =  " } else { "DRIFT" }
        );
        drifted.extend(local);
    }

    if drifted.is_empty() {
        println!("\nOK: all deterministic metrics identical.");
        ExitCode::SUCCESS
    } else {
        println!(
            "\nFAIL: {} field(s) drifted from the committed snapshot:",
            drifted.len()
        );
        for line in drifted.iter().take(25) {
            println!("  {line}");
        }
        if drifted.len() > 25 {
            println!("  ... and {} more", drifted.len() - 25);
        }
        println!("If the change is intentional, regenerate with ./bench.sh and commit the new snapshots.");
        ExitCode::FAILURE
    }
}
