//! E8 — Theorem 4.12 + Lemmas 4.1/4.11: the Orientation Algorithm computes
//! an `O(a)`-orientation in `O((a + log n) log n)` rounds, `O(log n)`
//! phases, and `O(log n)` per-node load.
//!
//! Sweeps arboricity via unions of `a` random forests at fixed `n`, then
//! sweeps `n` at fixed `a`.

use ncc_bench::{arboricity_workload, engine, f2, lg, Table, SEED};
use ncc_graph::check;
use ncc_hashing::SharedRandomness;

fn run(n: usize, a: usize, t: &mut Table) {
    let g = arboricity_workload(n, a, SEED + a as u64);
    let (alo, ahi) = ncc_graph::analysis::arboricity_bounds(&g);
    let mut eng = engine(n, SEED + (n + a) as u64);
    let shared = SharedRandomness::new(SEED ^ 0x0e1e);
    let r = ncc_core::orient(&mut eng, &shared, &g).expect("orientation");
    let ok = check::check_orientation(&g, &r.directed_edges(), 4 * ahi.max(1)).is_ok();
    let rounds = r.report.total.rounds;
    let bound = (alo as f64 + lg(n)) * lg(n);
    t.row(vec![
        n.to_string(),
        format!("[{alo},{ahi}]"),
        r.phases.to_string(),
        f2(r.phases as f64 / lg(n)),
        r.max_outdegree().to_string(),
        f2(r.max_outdegree() as f64 / alo.max(1) as f64),
        rounds.to_string(),
        f2(bound),
        f2(rounds as f64 / bound),
        r.report.total.peak_load().to_string(),
        ok.to_string(),
    ]);
}

fn main() {
    println!("# E8 — Theorem 4.12 (O(a)-Orientation)");
    let mut t = Table::new(&[
        "n",
        "a",
        "phases",
        "ph/logn",
        "outdeg",
        "outdeg/a",
        "rounds",
        "bound",
        "ratio",
        "peak_load",
        "ok",
    ]);
    println!("\n## arboricity sweep at n = 256");
    for a in [1usize, 2, 4, 8, 16] {
        run(256, a, &mut t);
    }
    t.print();

    let mut t = Table::new(&[
        "n",
        "a",
        "phases",
        "ph/logn",
        "outdeg",
        "outdeg/a",
        "rounds",
        "bound",
        "ratio",
        "peak_load",
        "ok",
    ]);
    println!("\n## n sweep at a = 4");
    for n in [64usize, 128, 256, 512] {
        run(n, 4, &mut t);
    }
    t.print();
    println!("\nexpected: phases ≲ 2·log n; outdeg/a ≤ 4; round ratio flat; peak_load = O(log n).");
}
