//! E8 — Theorem 4.12 + Lemmas 4.1/4.11: the Orientation Algorithm computes
//! an `O(a)`-orientation in `O((a + log n) log n)` rounds, `O(log n)`
//! phases, and `O(log n)` per-node load.
//!
//! Declarative [`ScenarioSpec`] sweep through the runner registry:
//! arboricity via unions of `a` random forests at fixed `n`, then `n` at
//! fixed `a`. `--json <path>` writes the records.

use ncc_bench::{cli_json, cli_threads, f2, lg, spec_graph, write_records_json, Table, SEED};
use ncc_graph::analysis;
use ncc_runner::{run_named_threads, FamilySpec, RunRecord, ScenarioSpec};

fn headers() -> Vec<&'static str> {
    vec![
        "n",
        "a",
        "phases",
        "ph/logn",
        "outdeg",
        "outdeg/a",
        "rounds",
        "bound",
        "ratio",
        "peak_load",
        "ok",
    ]
}

fn row(t: &mut Table, spec: &ScenarioSpec, rec: &RunRecord) {
    let n = spec.n;
    let (alo, ahi) = analysis::arboricity_bounds(&spec_graph(spec));
    let outdeg = rec.metric("max_outdegree").unwrap_or(0);
    let phases = rec.phases.unwrap_or(0);
    let bound = (alo as f64 + lg(n)) * lg(n);
    t.row(vec![
        n.to_string(),
        format!("[{alo},{ahi}]"),
        phases.to_string(),
        f2(phases as f64 / lg(n)),
        outdeg.to_string(),
        f2(outdeg as f64 / alo.max(1) as f64),
        rec.rounds.to_string(),
        f2(bound),
        f2(rec.rounds as f64 / bound),
        rec.max_load.to_string(),
        rec.verdict.ok().to_string(),
    ]);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli_threads(&args);
    let json = cli_json(&args);
    let mut records = Vec::new();
    let sweep = |title: &str, grid: Vec<ScenarioSpec>, records: &mut Vec<RunRecord>| {
        println!("\n## {title}");
        let mut t = Table::new(&headers());
        for spec in &grid {
            let rec = run_named_threads("orientation", spec, threads).expect("orientation");
            row(&mut t, spec, &rec);
            records.push(rec);
        }
        t.print();
    };

    println!("# E8 — Theorem 4.12 (O(a)-Orientation)");
    sweep(
        "arboricity sweep at n = 256",
        [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&a| ScenarioSpec::new(FamilySpec::Forests { k: a }, 256, SEED + a as u64))
            .collect(),
        &mut records,
    );
    sweep(
        "n sweep at a = 4",
        [64usize, 128, 256, 512]
            .iter()
            .map(|&n| ScenarioSpec::new(FamilySpec::Forests { k: 4 }, n, SEED + 4))
            .collect(),
        &mut records,
    );
    println!("\nexpected: phases ≲ 2·log n; outdeg/a ≤ 4; round ratio flat; peak_load = O(log n).");
    if let Some(path) = json {
        write_records_json(&path, "exp08_orientation", &records);
    }
}
