//! exp21 — serve-layer load: sustained scenarios/sec through `ncc-serve`.
//!
//! Spawns the resident coordinator in process (8 workers, TCP front on an
//! ephemeral local port), then drives it with 8 concurrent closed-loop
//! clients over a fixed spec mix — verified algorithms (mst, bfs, mis,
//! coloring, matching, orientation) across four graph families. Reports
//! sustained throughput and per-request latency percentiles, checks every
//! record against its peers (same spec ⇒ byte-identical record, whichever
//! worker and whichever cache state served it), and snapshots the result
//! as `BENCH_serve.json`.
//!
//! Unlike every other `BENCH_*.json`, this snapshot carries wall-clock
//! numbers, so its top level sets `"wall_clock": true` and `bench_compare`
//! reports it without gating (timing depends on the machine; the verdicts
//! inside are still checked).
//!
//! ```text
//! exp21_serve_load [--smoke] [--json BENCH_serve.json]
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use ncc_bench::{cli_json, f2, Table, SEED};
use ncc_runner::{FamilySpec, RunRecord, ScenarioSpec};
use ncc_serve::{Request, Response, ServeConfig, ServeStats, Server};
use serde::Serialize;

const CLIENTS: usize = 8;

/// The spec mix: verified algorithms across structurally distinct
/// families. Every client walks the same mix, so each entry is requested
/// `CLIENTS × per_client / mix.len()` times — the cache sees heavy reuse.
fn spec_mix(n: usize) -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "mst",
            ScenarioSpec::new(FamilySpec::Gnp { p: 16.0 / n as f64 }, n, SEED),
        ),
        (
            "bfs",
            ScenarioSpec::new(FamilySpec::Forests { k: 3 }, n, SEED + 1),
        ),
        ("mis", ScenarioSpec::new(FamilySpec::Tree, n, SEED + 2)),
        (
            "coloring",
            ScenarioSpec::new(FamilySpec::Ba { m: 3 }, n, SEED + 3),
        ),
        (
            "matching",
            ScenarioSpec::new(FamilySpec::Gnp { p: 12.0 / n as f64 }, n, SEED + 4),
        ),
        (
            "orientation",
            ScenarioSpec::new(FamilySpec::Forests { k: 2 }, n, SEED + 5),
        ),
    ]
}

/// One served response a client observed: which mix entry, the record, and
/// the request latency.
struct Observation {
    mix_idx: usize,
    record: RunRecord,
    cache_hit: bool,
    latency_us: u64,
}

/// Closed-loop client: one request in flight at a time; concurrency comes
/// from running `CLIENTS` of these against the pool simultaneously.
fn client(
    addr: std::net::SocketAddr,
    mix: &[(&'static str, ScenarioSpec)],
    per_client: usize,
    client_id: usize,
    barrier: &Barrier,
) -> Vec<Observation> {
    let mut stream = TcpStream::connect(addr).expect("connect to ncc-serve");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut observations = Vec::with_capacity(per_client);
    barrier.wait(); // release all clients at once
    for i in 0..per_client {
        // stagger the walk so clients hit different mix entries at once
        let mix_idx = (client_id + i) % mix.len();
        let (algorithm, spec) = &mix[mix_idx];
        let line = serde_json::to_string(&Request::Run {
            id: (client_id * 100_000 + i) as u64,
            algorithm: (*algorithm).into(),
            spec: spec.clone(),
        })
        .expect("request serializes");
        let start = Instant::now();
        writeln!(stream, "{line}").expect("send request");
        stream.flush().expect("flush request");
        let mut resp_line = String::new();
        reader.read_line(&mut resp_line).expect("read response");
        let latency_us = start.elapsed().as_micros() as u64;
        match Response::from_line(&resp_line).expect("parse response") {
            Response::Record {
                record, cache_hit, ..
            } => {
                assert!(
                    record.verdict.ok(),
                    "client {client_id}: {algorithm} verdict {:?}",
                    record.verdict
                );
                observations.push(Observation {
                    mix_idx,
                    record,
                    cache_hit,
                    latency_us,
                });
            }
            other => panic!("client {client_id}: expected record, got {other:?}"),
        }
    }
    observations
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1000.0
}

/// Headline latency numbers, in milliseconds.
#[derive(Serialize)]
struct LatencyMs {
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
}

/// The `BENCH_serve.json` schema. `wall_clock: true` is the marker
/// `bench_compare` keys its report-only mode on.
#[derive(Serialize)]
struct ServeBench {
    experiment: String,
    seed: u64,
    wall_clock: bool,
    clients: usize,
    requests: usize,
    n: usize,
    scenarios_per_sec: f64,
    latency_ms: LatencyMs,
    serve_stats: ServeStats,
    /// One canonical record per mix entry (all clients observed these
    /// exact bytes; deterministic, unlike the timing above).
    records: Vec<RunRecord>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (n, per_client) = if smoke { (32, 6) } else { (64, 12) };
    let mix = spec_mix(n);

    let cfg = ServeConfig::with_thread_budget(CLIENTS).with_cache_capacity(16);
    let server = Server::spawn(cfg, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();
    println!(
        "exp21: {CLIENTS} clients x {per_client} requests over {} specs (n={n}) \
         against {addr} ({} workers)",
        mix.len(),
        cfg.workers
    );

    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let mix = mix.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            client(addr, &mix, per_client, c, &barrier)
        }));
    }
    barrier.wait();
    let load_start = Instant::now();
    let observations: Vec<Observation> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = load_start.elapsed();

    // Byte-identity across the fleet: every observation of a mix entry
    // must carry the exact record bytes, whichever worker / cache state
    // served it.
    let mut canonical: Vec<Option<RunRecord>> = vec![None; mix.len()];
    for obs in &observations {
        let json = obs.record.to_json();
        match &canonical[obs.mix_idx] {
            Some(first) => assert_eq!(
                first.to_json(),
                json,
                "record for {} diverged across requests",
                mix[obs.mix_idx].1.label()
            ),
            None => canonical[obs.mix_idx] = Some(obs.record.clone()),
        }
    }
    let records: Vec<RunRecord> = canonical.into_iter().map(|r| r.expect("served")).collect();

    let total = observations.len();
    let hits = observations.iter().filter(|o| o.cache_hit).count();
    let mut latencies: Vec<u64> = observations.iter().map(|o| o.latency_us).collect();
    latencies.sort_unstable();
    let scenarios_per_sec = total as f64 / elapsed.as_secs_f64();
    let latency = LatencyMs {
        p50: percentile(&latencies, 50.0),
        p90: percentile(&latencies, 90.0),
        p99: percentile(&latencies, 99.0),
        max: percentile(&latencies, 100.0),
    };

    let mut table = Table::new(&["algorithm", "scenario", "rounds", "verdict"]);
    for (i, rec) in records.iter().enumerate() {
        table.row(vec![
            rec.algorithm.clone(),
            mix[i].1.label(),
            rec.rounds.to_string(),
            format!("{:?}", rec.verdict),
        ]);
    }
    table.print();

    let serve_stats = server.coordinator().stats();
    println!(
        "\nthroughput: {total} scenarios in {:.2}s = {} scenarios/sec \
         ({hits} cache hits, {} engine reuses)",
        elapsed.as_secs_f64(),
        f2(scenarios_per_sec),
        serve_stats.engine_reuses
    );
    println!(
        "latency ms: p50={} p90={} p99={} max={}",
        f2(latency.p50),
        f2(latency.p90),
        f2(latency.p99),
        f2(latency.max)
    );
    println!(
        "cache: {} entries, {} hits / {} misses, {} evictions",
        serve_stats.cache.entries,
        serve_stats.cache.hits,
        serve_stats.cache.misses,
        serve_stats.cache.evictions
    );
    assert!(
        serve_stats.cache.hits > 0,
        "a repeated mix must hit the cache"
    );
    assert_eq!(serve_stats.errors, 0, "load mix must serve cleanly");

    server.shutdown_and_join();

    if let Some(path) = cli_json(&args) {
        let bench = ServeBench {
            experiment: "exp21_serve_load".into(),
            seed: SEED,
            wall_clock: true,
            clients: CLIENTS,
            requests: total,
            n,
            scenarios_per_sec,
            latency_ms: latency,
            serve_stats,
            records,
        };
        let json = serde_json::to_string_pretty(&bench).expect("bench serializes") + "\n";
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
