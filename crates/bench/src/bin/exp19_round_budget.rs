//! E19 (supplementary) — round-budget breakdown: where do the rounds of
//! each algorithm actually go?
//!
//! Folds the per-stage reports by stage kind (FindMin multicasts vs
//! aggregations vs tree rebuilds vs termination checks …). This is the
//! ablation view behind the hidden constants discussed in EXPERIMENTS.md:
//! synchronisation barriers and the Identification Algorithm's delivery
//! spread dominate, exactly as the per-primitive analyses predict.

use ncc_bench::{arboricity_workload, engine, prepare, SEED};
use ncc_core::AlgoReport;
use ncc_graph::gen;

fn main() {
    let n = 256usize;
    println!("# E19 — round-budget breakdowns at n = {n}\n");

    {
        println!("## MST (gnp, W = n²)");
        let g = gen::gnp(n, 24.0 / n as f64, SEED);
        let wg = gen::with_random_weights(&g, (n * n) as u64, SEED + 1);
        let mut eng = engine(n, SEED + 2);
        let mut report = AlgoReport::default();
        let shared = ncc_bench::agree_randomness(&mut eng, &mut report, SEED + 3);
        let r = ncc_core::mst(&mut eng, &shared, &wg).expect("mst");
        println!("{}", r.report.breakdown_table());
    }

    {
        println!("## Orientation (forests, a = 8)");
        let g = arboricity_workload(n, 8, SEED);
        let mut eng = engine(n, SEED + 4);
        let shared = ncc_hashing::SharedRandomness::new(SEED);
        let r = ncc_core::orient(&mut eng, &shared, &g).expect("orientation");
        println!("{}", r.report.breakdown_table());
    }

    {
        println!("## MIS (forests, a = 3, including setup)");
        let g = arboricity_workload(n, 3, SEED);
        let mut eng = engine(n, SEED + 5);
        let (shared, bt, prep) = prepare(&mut eng, &g, SEED + 6);
        let r = ncc_core::mis(&mut eng, &shared, &bt, &g).expect("mis");
        println!("### setup\n{}", prep.breakdown_table());
        println!("### mis\n{}", r.report.breakdown_table());
    }
}
