//! E16 — ablation: the primitive stack vs naive direct communication.
//!
//! §2.2's motivating example: on a star, a node that talks to each neighbor
//! directly needs `Θ(n/log n)` rounds per wave, while the butterfly
//! primitives finish neighborhood exchanges in `O(a + log n)`. Both BFS
//! variants are *correct* (the naive one is TDMA-scheduled, so nothing is
//! dropped) — the difference is purely rounds, and it widens linearly in n.

use ncc_bench::{engine, f2, prepare, Table, SEED};
use ncc_graph::{check, gen};

fn main() {
    println!("# E16 — naive direct-send BFS vs primitive-stack BFS (star graphs)");
    let mut t = Table::new(&[
        "n",
        "naive_rounds",
        "stack_rounds",
        "stack(setup)",
        "stack(bfs)",
        "speedup",
    ]);
    for &n in &[256usize, 1024, 2048, 4096] {
        let g = gen::star(n);

        let mut eng = engine(n, SEED);
        let naive = ncc_baselines::naive_bfs(&mut eng, &g, 0).expect("naive bfs");
        check::check_bfs(&g, 0, &naive.dist, &naive.parent).expect("naive bfs valid");

        let mut eng = engine(n, SEED + 1);
        let (shared, bt, prep) = prepare(&mut eng, &g, SEED + 2);
        let r = ncc_core::bfs(&mut eng, &shared, &bt, &g, 0).expect("bfs");
        check::check_bfs(&g, 0, &r.dist, &r.parent).expect("stack bfs valid");
        let stack_total = prep.total.rounds + r.report.total.rounds;

        t.row(vec![
            n.to_string(),
            naive.stats.rounds.to_string(),
            stack_total.to_string(),
            prep.total.rounds.to_string(),
            r.report.total.rounds.to_string(),
            f2(naive.stats.rounds as f64 / stack_total as f64),
        ]);
    }
    t.print();
    println!("\nexpected: the naive TDMA schedule costs Θ((n/log n)²) on a star (slot wait");
    println!("× batch count), the stack stays polylog — small n favors naive constants,");
    println!("with the crossover near n ≈ 2–4k justifying the paper's machinery.");
}
