//! E7 — Theorem 3.2: MST in `O(log⁴ n)` rounds.
//!
//! A declarative sweep over [`ScenarioSpec`]s through the runner registry:
//! `n` over sparse `G(n,p)`, weight ranges `W = n, n², n³` at fixed `n`,
//! and a structure sweep. Every output is verified against Kruskal inside
//! the registry run; `--json <path>` writes the records, `--threads <t>`
//! runs the deterministic parallel executor.

use ncc_bench::{cli_json, cli_threads, f2, lg, write_records_json, Table, SEED};
use ncc_runner::{run_named_threads, FamilySpec, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli_threads(&args);
    let json = cli_json(&args);

    // The whole experiment is this grid — adding a row is a data change.
    let mut grid: Vec<(&str, ScenarioSpec)> = Vec::new();
    for &n in &[32usize, 64, 128, 256, 512] {
        grid.push((
            "gnp",
            ScenarioSpec::new(FamilySpec::Gnp { p: 24.0 / n as f64 }, n, SEED + n as u64),
        ));
    }
    // weight-range sweep at fixed n (Lemma 3.1's log W factor folds into
    // the key width; with W = poly(n) the bound is unchanged)
    let n = 128usize;
    for w in [n as u64, (n * n) as u64, (n * n * n) as u64] {
        grid.push((
            "gnp",
            ScenarioSpec::new(FamilySpec::Gnp { p: 0.2 }, n, SEED + 1).with_weight_max(w),
        ));
    }
    // structure sweep
    grid.push((
        "grid",
        ScenarioSpec::grid(16, 16, SEED).with_weight_max(1000),
    ));
    grid.push((
        "star",
        ScenarioSpec::new(FamilySpec::Star, 256, SEED).with_weight_max(1000),
    ));
    grid.push((
        "forests(8)",
        ScenarioSpec::new(FamilySpec::Forests { k: 8 }, 256, SEED).with_weight_max(1000),
    ));

    println!("# E7 — Theorem 3.2 (MST): rounds vs log⁴ n");
    let mut t = Table::new(&[
        "graph", "n", "W", "phases", "rounds", "log^4 n", "ratio", "ok",
    ]);
    let mut records = Vec::new();
    for (name, spec) in &grid {
        let rec = run_named_threads("mst", spec, threads).expect("mst");
        let bound = lg(spec.n).powi(4);
        t.row(vec![
            (*name).into(),
            spec.n.to_string(),
            spec.weight_max.to_string(),
            rec.phases.unwrap_or(0).to_string(),
            rec.rounds.to_string(),
            f2(bound),
            f2(rec.rounds as f64 / bound),
            rec.verdict.ok().to_string(),
        ]);
        records.push(rec);
    }
    t.print();
    println!("\nexpected: ratio flat in n; weak growth in W (key width), none in structure.");
    if let Some(path) = json {
        write_records_json(&path, "exp07_mst", &records);
    }
}
