//! E7 — Theorem 3.2: MST in `O(log⁴ n)` rounds.
//!
//! Sweeps `n` over several graph families and weight ranges `W = n, n², n³`;
//! verifies each output against Kruskal and prints `rounds / log⁴ n`.

use ncc_bench::{engine, f2, lg, Table, SEED};
use ncc_core::AlgoReport;
use ncc_graph::{check, gen};

fn run(name: &str, g: &ncc_graph::Graph, w_max: u64, t: &mut Table) {
    let n = g.n();
    let wg = gen::with_random_weights(g, w_max, SEED + 9);
    let mut eng = engine(n, SEED + 10);
    let mut report = AlgoReport::default();
    let shared = ncc_bench::agree_randomness(&mut eng, &mut report, SEED + 11);
    let r = ncc_core::mst(&mut eng, &shared, &wg).expect("mst");
    report.push("mst", r.report.total);
    let ok = check::check_mst(&wg, &r.edges).is_ok();
    let bound = lg(n).powi(4);
    t.row(vec![
        name.into(),
        n.to_string(),
        w_max.to_string(),
        r.phases.to_string(),
        report.total.rounds.to_string(),
        f2(bound),
        f2(report.total.rounds as f64 / bound),
        ok.to_string(),
    ]);
}

fn main() {
    println!("# E7 — Theorem 3.2 (MST): rounds vs log⁴ n");
    let mut t = Table::new(&[
        "graph", "n", "W", "phases", "rounds", "log^4 n", "ratio", "ok",
    ]);
    for &n in &[32usize, 64, 128, 256, 512] {
        run(
            "gnp",
            &gen::gnp(n, 24.0 / n as f64, SEED + n as u64),
            (n * n) as u64,
            &mut t,
        );
    }
    // weight-range sweep at fixed n (Lemma 3.1's log W factor folds into
    // the key width; with W = poly(n) the bound is unchanged)
    let n = 128usize;
    run("gnp", &gen::gnp(n, 0.2, SEED + 1), n as u64, &mut t);
    run("gnp", &gen::gnp(n, 0.2, SEED + 1), (n * n) as u64, &mut t);
    run(
        "gnp",
        &gen::gnp(n, 0.2, SEED + 1),
        (n * n * n) as u64,
        &mut t,
    );
    // structure sweep
    run("grid", &gen::grid(16, 16), 1000, &mut t);
    run("star", &gen::star(256), 1000, &mut t);
    run("forests(8)", &gen::forest_union(256, 8, SEED), 1000, &mut t);
    t.print();
    println!("\nexpected: ratio flat in n; weak growth in W (key width), none in structure.");
}
