//! E13 — the §1 capacity-bound demonstrations: gossip needs `Θ(n/log n)`
//! rounds; broadcast takes `Θ(log n / log log n)`.
//!
//! Both protocols are round-optimal up to constants, so the measured curves
//! trace the bounds: `gossip·log n / n` and `broadcast·log log n / log n`
//! must stay flat.

use ncc_baselines::{broadcast_all, gossip_all};
use ncc_bench::{engine, f2, lg, Table, SEED};

fn main() {
    println!("# E13 — gossip Θ(n/log n) and broadcast Θ(log n/log log n)");
    let mut t = Table::new(&[
        "n",
        "cap",
        "gossip",
        "n/cap",
        "g-ratio",
        "bcast",
        "log/loglog",
        "b-ratio",
    ]);
    for k in [6u32, 8, 10, 12] {
        let n = 1usize << k;
        let mut eng = engine(n, SEED);
        let cap = eng.config().capacity.send;
        let g = gossip_all(&mut eng).expect("gossip");
        let mut eng = engine(n, SEED + 1);
        let b = broadcast_all(&mut eng, 42).expect("broadcast");
        let g_bound = n as f64 / cap as f64;
        let b_bound = (lg(n) / lg(n).log2()).max(1.0);
        t.row(vec![
            n.to_string(),
            cap.to_string(),
            g.rounds.to_string(),
            f2(g_bound),
            f2(g.rounds as f64 / g_bound),
            b.rounds.to_string(),
            f2(b_bound),
            f2(b.rounds as f64 / b_bound),
        ]);
    }
    t.print();
    println!("\nexpected: both ratio columns flat — the intro's bounds are tight for");
    println!("these protocols (gossip saturates Θ̃(n) bits/round; broadcast fans out Θ(log n)).");
}
