//! E13 — the §1 capacity-bound demonstrations: gossip needs `Θ(n/log n)`
//! rounds; broadcast takes `Θ(log n / log log n)`.
//!
//! Both protocols are round-optimal up to constants, so the measured curves
//! trace the bounds: `gossip·log n / n` and `broadcast·log log n / log n`
//! must stay flat. Declarative scenario sweep through the runner registry
//! (the dissemination baselines run on the clique itself, so the input
//! graph family is a cheap placeholder). `--json <path>` writes the
//! records.

use ncc_bench::{cli_json, cli_threads, f2, lg, write_records_json, Table, SEED};
use ncc_runner::{run_named_threads, FamilySpec, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli_threads(&args);
    let json = cli_json(&args);

    let grid: Vec<ScenarioSpec> = [6u32, 8, 10, 12]
        .iter()
        .map(|&k| ScenarioSpec::new(FamilySpec::Path, 1usize << k, SEED))
        .collect();

    println!("# E13 — gossip Θ(n/log n) and broadcast Θ(log n/log log n)");
    let mut t = Table::new(&[
        "n",
        "cap",
        "gossip",
        "n/cap",
        "g-ratio",
        "bcast",
        "log/loglog",
        "b-ratio",
    ]);
    let mut records = Vec::new();
    for spec in &grid {
        let n = spec.n;
        let cap = spec.capacity.send;
        let g = run_named_threads("gossip", spec, threads).expect("gossip");
        let b = run_named_threads("broadcast", &spec.clone().with_seed(SEED + 1), threads)
            .expect("broadcast");
        let g_bound = n as f64 / cap as f64;
        let b_bound = (lg(n) / lg(n).log2()).max(1.0);
        t.row(vec![
            n.to_string(),
            cap.to_string(),
            g.rounds.to_string(),
            f2(g_bound),
            f2(g.rounds as f64 / g_bound),
            b.rounds.to_string(),
            f2(b_bound),
            f2(b.rounds as f64 / b_bound),
        ]);
        records.push(g);
        records.push(b);
    }
    t.print();
    println!("\nexpected: both ratio columns flat — the intro's bounds are tight for");
    println!("these protocols (gossip saturates Θ̃(n) bits/round; broadcast fans out Θ(log n)).");
    if let Some(path) = json {
        write_records_json(&path, "exp13_gossip_broadcast", &records);
    }
}
