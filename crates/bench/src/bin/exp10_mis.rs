//! E10 — Theorem 5.3: MIS in `O((a + log n) log n)` rounds.
//!
//! Arboricity sweep at fixed `n`, then `n` sweep at fixed `a`; validity
//! checked and the MIS size reported next to the greedy baseline's.

use ncc_bench::{arboricity_workload, engine, f2, lg, prepare, Table, SEED};
use ncc_graph::check;

fn run(n: usize, a: usize, t: &mut Table) {
    let g = arboricity_workload(n, a, SEED + a as u64 * 3);
    let mut eng = engine(n, SEED + (n * a) as u64);
    let (shared, bt, prep) = prepare(&mut eng, &g, SEED + 5);
    let r = ncc_core::mis(&mut eng, &shared, &bt, &g).expect("mis");
    let ok = check::check_mis(&g, &r.in_mis).is_ok();
    let size = r.in_mis.iter().filter(|&&b| b).count();
    let greedy = ncc_baselines::greedy_mis(&g).iter().filter(|&&b| b).count();
    let rounds = prep.total.rounds + r.report.total.rounds;
    let bound = (a as f64 + lg(n)) * lg(n);
    t.row(vec![
        n.to_string(),
        a.to_string(),
        r.phases.to_string(),
        size.to_string(),
        greedy.to_string(),
        rounds.to_string(),
        f2(bound),
        f2(rounds as f64 / bound),
        ok.to_string(),
    ]);
}

fn main() {
    println!("# E10 — Theorem 5.3 (MIS): rounds vs (a + log n)·log n");
    let mut t = Table::new(&[
        "n", "a", "phases", "|MIS|", "|greedy|", "rounds", "bound", "ratio", "ok",
    ]);
    for a in [1usize, 2, 4, 8, 16] {
        run(256, a, &mut t);
    }
    for n in [64usize, 128, 256, 512] {
        run(n, 3, &mut t);
    }
    t.print();
    println!("\nexpected: flat ratio; MIS size comparable to the greedy baseline.");
}
