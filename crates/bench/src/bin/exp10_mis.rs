//! E10 — Theorem 5.3: MIS in `O((a + log n) log n)` rounds.
//!
//! Declarative scenario sweep: arboricity at fixed `n`, then `n` at fixed
//! `a`. Validity is checked inside the registry run; the MIS size is
//! reported next to the sequential greedy baseline's. `--json <path>`
//! writes the records.

use ncc_bench::{cli_json, cli_threads, f2, lg, spec_graph, write_records_json, Table, SEED};
use ncc_runner::{run_named_threads, FamilySpec, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli_threads(&args);
    let json = cli_json(&args);

    let mut grid: Vec<(usize, ScenarioSpec)> = Vec::new();
    for &a in &[1usize, 2, 4, 8, 16] {
        grid.push((
            a,
            ScenarioSpec::new(FamilySpec::Forests { k: a }, 256, SEED + a as u64 * 3),
        ));
    }
    for &n in &[64usize, 128, 256, 512] {
        grid.push((
            3,
            ScenarioSpec::new(FamilySpec::Forests { k: 3 }, n, SEED + 5),
        ));
    }

    println!("# E10 — Theorem 5.3 (MIS): rounds vs (a + log n)·log n");
    let mut t = Table::new(&[
        "n", "a", "phases", "|MIS|", "|greedy|", "rounds", "bound", "ratio", "ok",
    ]);
    let mut records = Vec::new();
    for (a, spec) in &grid {
        let rec = run_named_threads("mis", spec, threads).expect("mis");
        let greedy = ncc_baselines::greedy_mis(&spec_graph(spec))
            .iter()
            .filter(|&&b| b)
            .count();
        let bound = (*a as f64 + lg(spec.n)) * lg(spec.n);
        t.row(vec![
            spec.n.to_string(),
            a.to_string(),
            rec.phases.unwrap_or(0).to_string(),
            rec.metric("mis_size").unwrap_or(0).to_string(),
            greedy.to_string(),
            rec.rounds.to_string(),
            f2(bound),
            f2(rec.rounds as f64 / bound),
            rec.verdict.ok().to_string(),
        ]);
        records.push(rec);
    }
    t.print();
    println!("\nexpected: flat ratio; MIS size comparable to the greedy baseline.");
    if let Some(path) = json {
        write_records_json(&path, "exp10_mis", &records);
    }
}
