//! E14 — Appendix A / Corollary 2: an NCC algorithm running `T` rounds
//! costs `Õ(n·T/k²)` k-machine rounds under random vertex partitioning.
//!
//! Attaches the k-machine cost sink to a BFS execution and sweeps `k`:
//! `km_rounds · k² / (n · T)` must stay roughly flat (up to the Õ(·)
//! log factors and the max-vs-mean gap on the bottleneck link).

use ncc_bench::{engine, f2, prepare, Table, SEED};
use ncc_graph::gen;
use ncc_kmachine::{KMachineCost, SharedSink};

fn main() {
    println!("# E14 — Corollary 2 (k-machine conversion of a full NCC execution)");
    let n = 256usize;
    let g = gen::gnp(n, 0.05, SEED);
    let mut t = Table::new(&[
        "k",
        "ncc_rounds",
        "km_rounds",
        "cross_msgs",
        "n*T/k^2",
        "ratio",
        "max_pair",
    ]);
    for k in [2usize, 4, 8, 16, 32] {
        let mut eng = engine(n, SEED + k as u64);
        let (sink, handle) = SharedSink::new(KMachineCost::with_random_assignment(n, k, SEED, 1));
        eng.set_sink(Box::new(sink));
        let (shared, bt, _) = prepare(&mut eng, &g, SEED + 4);
        let _ = ncc_core::bfs(&mut eng, &shared, &bt, &g, 0).expect("bfs");
        let report = handle.lock().unwrap().report();
        let bound = (n as u64 * report.ncc_rounds) as f64 / (k * k) as f64;
        t.row(vec![
            k.to_string(),
            report.ncc_rounds.to_string(),
            report.km_rounds.to_string(),
            report.cross_messages.to_string(),
            f2(bound),
            f2(report.km_rounds as f64 / bound),
            report.max_pair_load.to_string(),
        ]);
    }
    t.print();
    println!("\nexpected: km_rounds falls ≈ k²-fold as k doubles (until the T·sync floor");
    println!("dominates at large k); ratio bounded by a polylog factor (the Õ).");
}
