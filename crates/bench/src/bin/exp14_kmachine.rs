//! E14 — Appendix A / Corollary 2: an NCC algorithm running `T` rounds
//! costs `Õ(n·T/k²)` k-machine rounds under random vertex partitioning.
//!
//! Runs BFS through the runner registry under the first-class `KMachine`
//! execution model for a sweep of `k`: the engine routes every delivery
//! through the machine partition and charges per-link capacity, so
//! `km_rounds` lands in the `ExecStats` (and the RunRecord) instead of a
//! side-channel trace sink. `km_rounds · k² / (n · T)` must stay roughly
//! flat (up to the Õ(·) log factors and the max-vs-mean gap on the
//! bottleneck link).
//!
//! With `--json <path>` the sweep writes its `RunRecord`s in the
//! `BENCH_*.json` schema — the scenario echo carries the model, so the
//! perf-trajectory history sees the k-machine dimension.

use ncc_bench::{cli_json, f2, write_records_json, Table, SEED};
use ncc_kmachine::KMachineModel;
use ncc_runner::{find_algorithm, FamilySpec, ModelSpec, RunRecord, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = cli_json(&args);

    println!("# E14 — Corollary 2 (k-machine conversion of a full NCC execution)");
    let n = 256usize;
    let bfs = find_algorithm("bfs").expect("bfs registered");
    let mut t = Table::new(&[
        "k",
        "ncc_rounds",
        "km_rounds",
        "cross_msgs",
        "n*T/k^2",
        "ratio",
        "max_pair",
    ]);
    let mut records: Vec<RunRecord> = Vec::new();
    for k in [2usize, 4, 8, 16, 32] {
        let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.05 }, n, SEED).with_model(
            ModelSpec::KMachine {
                k,
                link_capacity: 1,
            },
        );
        let scn = spec.build().expect("buildable spec");
        let mut eng = scn.engine();
        let record = bfs.run(&mut eng, &scn).expect("bfs");
        let km = eng
            .model()
            .as_any()
            .downcast_ref::<KMachineModel>()
            .expect("kmachine model")
            .report();
        assert_eq!(km.km_rounds, record.km_rounds, "stats and model agree");
        let bound = (n as u64 * record.rounds) as f64 / (k * k) as f64;
        t.row(vec![
            k.to_string(),
            record.rounds.to_string(),
            record.km_rounds.to_string(),
            km.cross_messages.to_string(),
            f2(bound),
            f2(record.km_rounds as f64 / bound),
            km.max_pair_load.to_string(),
        ]);
        records.push(record);
    }
    t.print();
    println!("\nexpected: km_rounds falls ≈ k²-fold as k doubles (until the T·sync floor");
    println!("dominates at large k); ratio bounded by a polylog factor (the Õ).");

    if let Some(path) = json_path {
        write_records_json(&path, "exp14_kmachine", &records);
    }
}
