//! E2 — Theorem 2.2: Aggregate-and-Broadcast runs in `O(log n)` rounds.
//!
//! Sweeps `n`, measures rounds and per-round load; `rounds / log₂ n` must
//! stay bounded by a small constant (ours is ≈ 2: one aggregation sweep +
//! one broadcast sweep).

use ncc_bench::{engine, f2, lg, Table, SEED};
use ncc_butterfly::{aggregate_and_broadcast, SumU64};

fn main() {
    println!("# E2 — Theorem 2.2 (Aggregate-and-Broadcast): rounds vs log n");
    let mut t = Table::new(&[
        "n",
        "rounds",
        "log2(n)",
        "rounds/log2(n)",
        "max_load",
        "clean",
    ]);
    for k in [4u32, 6, 8, 10, 12, 13] {
        let n = 1usize << k;
        let mut eng = engine(n, SEED);
        let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
        let (res, stats) = aggregate_and_broadcast(&mut eng, inputs, &SumU64).expect("a&b");
        assert!(res.iter().all(|r| r.is_some()));
        t.row(vec![
            n.to_string(),
            stats.rounds.to_string(),
            f2(lg(n)),
            f2(stats.rounds as f64 / lg(n)),
            stats.peak_load().to_string(),
            stats.clean().to_string(),
        ]);
    }
    t.print();
    println!("\nexpected: rounds ≈ 2·log2(n) + O(1); per-round load O(1).");
}
