//! E4 — Theorem 2.4: Multicast Tree Setup in `O(L/n + ℓ/log n + log n)`
//! rounds with tree congestion `O(L/n + log n)`.
//!
//! Sweeps the global load `L` (members per group × group count) and prints
//! setup rounds and measured congestion against both bounds.

use ncc_bench::{engine, f2, lg, Table, SEED};
use ncc_butterfly::{multicast_setup, self_joins, GroupId};
use ncc_hashing::SharedRandomness;

fn main() {
    let n = 1024usize;
    let shared = SharedRandomness::new(SEED);
    println!("# E4 — Theorem 2.4 (Multicast Tree Setup), n = {n}");
    let mut t = Table::new(&[
        "groups",
        "members",
        "L",
        "rounds",
        "r-bound",
        "r-ratio",
        "congestion",
        "c-bound",
        "c-ratio",
    ]);
    for (groups, members) in [
        (n / 64, 64usize),
        (n / 16, 16),
        (n / 4, 4),
        (n, 2),
        (n, 8),
        (n, 32),
    ] {
        let mut joins: Vec<Vec<GroupId>> = vec![Vec::new(); n];
        for gi in 0..groups {
            for m in 0..members {
                let member = (gi * 7919 + m * 104729) % n;
                joins[member].push(GroupId::new(gi as u32, 21));
            }
        }
        let load: usize = joins.iter().map(Vec::len).sum();
        let ell = joins.iter().map(Vec::len).max().unwrap_or(0);
        let mut eng = engine(n, SEED + groups as u64 + members as u64);
        let (trees, stats) = multicast_setup(&mut eng, &shared, self_joins(joins)).expect("setup");
        let c = trees.congestion();
        let r_bound = load as f64 / n as f64 + ell as f64 / lg(n) + lg(n);
        let c_bound = load as f64 / n as f64 + lg(n);
        t.row(vec![
            groups.to_string(),
            members.to_string(),
            load.to_string(),
            stats.rounds.to_string(),
            f2(r_bound),
            f2(stats.rounds as f64 / r_bound),
            c.to_string(),
            f2(c_bound),
            f2(c as f64 / c_bound),
        ]);
        assert!(stats.clean());
    }
    t.print();
    println!("\nexpected: both ratio columns flat (Theorem 2.4).");
}
