//! Plain-text graph I/O.
//!
//! A minimal interchange format so workloads can be exported, diffed, and
//! re-run outside the generators:
//!
//! ```text
//! # comment
//! n <node-count>
//! e <u> <v> [weight]
//! ```
//!
//! Unweighted and weighted graphs share the format; a missing weight means
//! weight 1.

use crate::graph::{Graph, WeightedGraph};
use crate::{NodeId, Weight};

/// Serialises a graph to the edge-list format.
pub fn write_graph(g: &Graph) -> String {
    let mut s = String::with_capacity(16 + 12 * g.m());
    s.push_str(&format!("n {}\n", g.n()));
    for (u, v) in g.edges() {
        s.push_str(&format!("e {u} {v}\n"));
    }
    s
}

/// Serialises a weighted graph.
pub fn write_weighted(g: &WeightedGraph) -> String {
    let mut s = String::with_capacity(16 + 16 * g.m());
    s.push_str(&format!("n {}\n", g.n()));
    for (u, v, w) in g.weighted_edges() {
        s.push_str(&format!("e {u} {v} {w}\n"));
    }
    s
}

/// Parse error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type ParsedEdges = (usize, Vec<(NodeId, NodeId, Weight)>);

fn parse_lines(text: &str) -> Result<ParsedEdges, ParseError> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: &str| ParseError {
            line: i + 1,
            message: message.to_string(),
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                let v = parts
                    .next()
                    .ok_or_else(|| err("missing node count"))?
                    .parse()
                    .map_err(|_| err("bad node count"))?;
                n = Some(v);
            }
            Some("e") => {
                let u: NodeId = parts
                    .next()
                    .ok_or_else(|| err("missing endpoint"))?
                    .parse()
                    .map_err(|_| err("bad endpoint"))?;
                let v: NodeId = parts
                    .next()
                    .ok_or_else(|| err("missing endpoint"))?
                    .parse()
                    .map_err(|_| err("bad endpoint"))?;
                let w: Weight = match parts.next() {
                    Some(t) => t.parse().map_err(|_| err("bad weight"))?,
                    None => 1,
                };
                edges.push((u, v, w));
            }
            Some(tok) => return Err(err(&format!("unknown directive '{tok}'"))),
            None => unreachable!(),
        }
    }
    let n = n.ok_or(ParseError {
        line: 0,
        message: "missing 'n' directive".into(),
    })?;
    for &(u, v, _) in &edges {
        if u as usize >= n || v as usize >= n {
            return Err(ParseError {
                line: 0,
                message: format!("edge ({u},{v}) out of range for n = {n}"),
            });
        }
    }
    Ok((n, edges))
}

/// Parses an unweighted graph (weights, if present, are discarded).
pub fn read_graph(text: &str) -> Result<Graph, ParseError> {
    let (n, edges) = parse_lines(text)?;
    Ok(Graph::from_edges(
        n,
        edges.into_iter().map(|(u, v, _)| (u, v)),
    ))
}

/// Parses a weighted graph.
pub fn read_weighted(text: &str) -> Result<WeightedGraph, ParseError> {
    let (n, edges) = parse_lines(text)?;
    Ok(WeightedGraph::from_weighted_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_unweighted() {
        let g = gen::gnp(30, 0.2, 5);
        let text = write_graph(&g);
        let back = read_graph(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_weighted() {
        let g = gen::with_random_weights(&gen::gnp(25, 0.25, 6), 500, 7);
        let text = write_weighted(&g);
        let back = read_weighted(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = read_graph("# header\n\nn 3\ne 0 1\n# mid\ne 1 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn default_weight_is_one() {
        let g = read_weighted("n 2\ne 0 1\n").unwrap();
        assert_eq!(g.weight_of(0, 1), Some(1));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = read_graph("n 3\nz 0 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown"));
        let e = read_graph("e 0 1\n").unwrap_err();
        assert!(e.message.contains("missing 'n'"));
        let e = read_graph("n 2\ne 0 5\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }
}
