//! # ncc-graph — input graphs for Node-Capacitated Clique algorithms
//!
//! In the paper's setting the *communication* topology is the capacity-
//! limited clique, while the *problem input* is an arbitrary undirected
//! graph `G` on the same node set; every node initially knows exactly its
//! own neighborhood in `G` (§1.1). This crate owns everything about `G`:
//!
//! * [`graph`] — compact CSR storage for unweighted and weighted graphs;
//! * [`gen`] — seeded generators covering every arboricity regime the
//!   paper's bounds distinguish (trees and forests, planar grids, stars,
//!   G(n,p), Barabási–Albert, unions of k forests, …);
//! * [`analysis`] — components, BFS, diameter, degeneracy, and arboricity
//!   bounds (Nash-Williams density lower bound, degeneracy upper bound);
//! * [`dsu`] — union–find, used by the Kruskal reference and checkers;
//! * [`check`] — validators for every problem the paper solves (spanning
//!   trees, BFS trees, MIS, maximal matching, coloring, orientations), used
//!   by tests and by the experiment harness to certify outputs.
//!
//! # Example
//!
//! ```
//! use ncc_graph::{analysis, gen};
//!
//! let g = gen::forest_union(64, 3, 42);       // union of 3 forests
//! let (lo, hi) = analysis::arboricity_bounds(&g);
//! assert!(lo <= 3 && hi <= 6);                 // arboricity ≈ 3 by construction
//! let dist = analysis::bfs_distances(&g, 0);
//! assert_eq!(dist[0], 0);
//! ```

pub mod analysis;
pub mod check;
pub mod dsu;
pub mod gen;
pub mod graph;
pub mod io;

pub use dsu::Dsu;
pub use graph::{Graph, GraphBuilder, WeightedGraph};

/// Node identifier within an input graph (same id space as the NCC nodes).
pub type NodeId = u32;
/// Edge weight (the paper assumes integral weights in `{1..W}`, `W = poly(n)`).
pub type Weight = u64;
