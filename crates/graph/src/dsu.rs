//! Union–find (disjoint set union) with path halving and union by size.
//!
//! Used by the Kruskal reference MST, the spanning-tree checkers, and the
//! component analyses. Not part of any simulated protocol.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl Dsu {
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut d = Dsu::new(5);
        assert_eq!(d.component_count(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0));
        assert!(d.same(0, 1));
        assert!(!d.same(0, 2));
        assert_eq!(d.component_count(), 3);
        assert!(d.union(1, 2));
        assert!(d.same(0, 3));
        assert_eq!(d.size_of(3), 4);
        assert_eq!(d.size_of(4), 1);
    }

    #[test]
    fn chain_unions_single_component() {
        let n = 1000;
        let mut d = Dsu::new(n);
        for i in 0..n - 1 {
            assert!(d.union(i as u32, (i + 1) as u32));
        }
        assert_eq!(d.component_count(), 1);
        assert!(d.same(0, (n - 1) as u32));
    }
}
