//! Solution checkers for every problem the paper solves.
//!
//! Each checker returns `Ok(())` or a human-readable reason. Experiments
//! certify *every* distributed output with these before reporting round
//! counts — a fast wrong answer reproduces nothing.

use crate::analysis::{self, UNREACHABLE};
use crate::dsu::Dsu;
use crate::graph::{Graph, WeightedGraph};
use crate::{NodeId, Weight};

/// Result type for all checkers.
pub type CheckResult = Result<(), String>;

/// Reference MST weight via Kruskal. Works on disconnected graphs
/// (produces a minimum spanning forest).
pub fn kruskal_mst_weight(g: &WeightedGraph) -> Weight {
    let mut edges: Vec<(Weight, NodeId, NodeId)> =
        g.weighted_edges().map(|(u, v, w)| (w, u, v)).collect();
    edges.sort_unstable();
    let mut dsu = Dsu::new(g.n());
    let mut total = 0;
    for (w, u, v) in edges {
        if dsu.union(u, v) {
            total += w;
        }
    }
    total
}

/// Reference MST edge set via Kruskal with (weight, edge) tie-breaking.
pub fn kruskal_mst_edges(g: &WeightedGraph) -> Vec<(NodeId, NodeId)> {
    let mut edges: Vec<(Weight, NodeId, NodeId)> =
        g.weighted_edges().map(|(u, v, w)| (w, u, v)).collect();
    edges.sort_unstable();
    let mut dsu = Dsu::new(g.n());
    let mut out = Vec::new();
    for (_, u, v) in edges {
        if dsu.union(u, v) {
            out.push((u, v));
        }
    }
    out
}

/// Verifies that `edges` is a minimum spanning forest of `g`:
/// spanning (connects exactly what `g` connects), acyclic, and of minimum
/// total weight (compared against Kruskal).
pub fn check_mst(g: &WeightedGraph, edges: &[(NodeId, NodeId)]) -> CheckResult {
    let comps = analysis::connected_components(g.graph());
    let expected_edges = g.n() - comps.count;
    if edges.len() != expected_edges {
        return Err(format!(
            "spanning forest must have {expected_edges} edges, got {}",
            edges.len()
        ));
    }
    let mut dsu = Dsu::new(g.n());
    let mut total: Weight = 0;
    for &(u, v) in edges {
        let w = g
            .weight_of(u, v)
            .ok_or_else(|| format!("edge ({u},{v}) not in graph"))?;
        if !dsu.union(u, v) {
            return Err(format!("edge ({u},{v}) creates a cycle"));
        }
        total += w;
    }
    let reference = kruskal_mst_weight(g);
    if total != reference {
        return Err(format!(
            "weight {total} differs from MST weight {reference}"
        ));
    }
    Ok(())
}

/// Verifies BFS output: distances and parents (§5.1 semantics — parent is a
/// neighbor at distance one less; unreachable nodes are marked).
pub fn check_bfs(g: &Graph, src: NodeId, dist: &[u32], parent: &[Option<NodeId>]) -> CheckResult {
    if dist.len() != g.n() || parent.len() != g.n() {
        return Err("wrong output length".into());
    }
    let reference = analysis::bfs_distances(g, src);
    for v in 0..g.n() {
        if dist[v] != reference[v] {
            return Err(format!(
                "node {v}: distance {} but true distance {}",
                dist[v], reference[v]
            ));
        }
    }
    for v in 0..g.n() as NodeId {
        match parent[v as usize] {
            None => {
                if v != src && dist[v as usize] != UNREACHABLE {
                    return Err(format!("reachable node {v} has no parent"));
                }
            }
            Some(p) => {
                if v == src {
                    return Err("source has a parent".into());
                }
                if !g.has_edge(v, p) {
                    return Err(format!("parent edge ({v},{p}) not in graph"));
                }
                if dist[p as usize] + 1 != dist[v as usize] {
                    return Err(format!(
                        "parent {p} of {v} is not one hop closer ({} vs {})",
                        dist[p as usize], dist[v as usize]
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Verifies a maximal independent set.
pub fn check_mis(g: &Graph, in_set: &[bool]) -> CheckResult {
    if in_set.len() != g.n() {
        return Err("wrong output length".into());
    }
    for (u, v) in g.edges() {
        if in_set[u as usize] && in_set[v as usize] {
            return Err(format!("adjacent nodes {u},{v} both in set"));
        }
    }
    for v in 0..g.n() as NodeId {
        if !in_set[v as usize] && !g.neighbors(v).iter().any(|&u| in_set[u as usize]) {
            return Err(format!("node {v} could be added (not maximal)"));
        }
    }
    Ok(())
}

/// Verifies a maximal matching, given as a per-node partner assignment.
pub fn check_matching(g: &Graph, mate: &[Option<NodeId>]) -> CheckResult {
    if mate.len() != g.n() {
        return Err("wrong output length".into());
    }
    for v in 0..g.n() as NodeId {
        if let Some(u) = mate[v as usize] {
            if mate[u as usize] != Some(v) {
                return Err(format!("matching not symmetric at ({v},{u})"));
            }
            if u == v {
                return Err(format!("node {v} matched to itself"));
            }
            if !g.has_edge(u, v) {
                return Err(format!("matched pair ({v},{u}) not an edge"));
            }
        }
    }
    for (u, v) in g.edges() {
        if mate[u as usize].is_none() && mate[v as usize].is_none() {
            return Err(format!("edge ({u},{v}) could be added (not maximal)"));
        }
    }
    Ok(())
}

/// Verifies a proper coloring and that it uses at most `palette` colors
/// (colors are `0..palette`).
pub fn check_coloring(g: &Graph, colors: &[u32], palette: u32) -> CheckResult {
    if colors.len() != g.n() {
        return Err("wrong output length".into());
    }
    for (v, &c) in colors.iter().enumerate() {
        if c >= palette {
            return Err(format!("node {v} uses color {c} ≥ palette {palette}"));
        }
    }
    for (u, v) in g.edges() {
        if colors[u as usize] == colors[v as usize] {
            return Err(format!(
                "adjacent nodes {u},{v} share color {}",
                colors[u as usize]
            ));
        }
    }
    Ok(())
}

/// Verifies an orientation: every edge directed exactly once, maximum
/// outdegree at most `bound` (the §4 guarantee is `O(a)`; callers pass the
/// concrete bound they claim).
pub fn check_orientation(g: &Graph, directed: &[(NodeId, NodeId)], bound: usize) -> CheckResult {
    if directed.len() != g.m() {
        return Err(format!(
            "need {} directed edges, got {}",
            g.m(),
            directed.len()
        ));
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut outdeg = vec![0usize; g.n()];
    for &(u, v) in directed {
        if !g.has_edge(u, v) {
            return Err(format!("({u},{v}) not an edge"));
        }
        if !seen.insert((u.min(v), u.max(v))) {
            return Err(format!("edge {{{u},{v}}} directed twice"));
        }
        outdeg[u as usize] += 1;
    }
    let max = outdeg.iter().copied().max().unwrap_or(0);
    if max > bound {
        return Err(format!("max outdegree {max} exceeds bound {bound}"));
    }
    Ok(())
}

/// Maximum outdegree of an orientation (for reporting the measured constant).
pub fn orientation_max_outdegree(n: usize, directed: &[(NodeId, NodeId)]) -> usize {
    let mut outdeg = vec![0usize; n];
    for &(u, _) in directed {
        outdeg[u as usize] += 1;
    }
    outdeg.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn kruskal_on_known_graph() {
        let g =
            WeightedGraph::from_weighted_edges(4, [(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 10)]);
        assert_eq!(kruskal_mst_weight(&g), 6);
        let edges = kruskal_mst_edges(&g);
        assert_eq!(edges.len(), 3);
        assert!(check_mst(&g, &edges).is_ok());
    }

    #[test]
    fn mst_checker_rejects_cycle_and_wrong_weight() {
        let g =
            WeightedGraph::from_weighted_edges(4, [(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 10)]);
        // cycle
        let bad = vec![(0, 1), (1, 2), (0, 3)];
        assert!(check_mst(&g, &bad).unwrap_err().contains("weight"));
        let cyc = vec![(0, 1), (1, 2), (0, 2)];
        let err = check_mst(
            &WeightedGraph::from_weighted_edges(4, [(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 1)]),
            &cyc,
        )
        .unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn mst_checker_on_disconnected_graph() {
        let g = WeightedGraph::from_weighted_edges(5, [(0, 1, 1), (2, 3, 5)]);
        assert!(check_mst(&g, &[(0, 1), (2, 3)]).is_ok());
        assert!(check_mst(&g, &[(0, 1)]).is_err());
    }

    #[test]
    fn bfs_checker_accepts_reference() {
        let g = diamond();
        let (dist, parent) = analysis::bfs_tree(&g, 0);
        assert!(check_bfs(&g, 0, &dist, &parent).is_ok());
    }

    #[test]
    fn bfs_checker_rejects_wrong_distance() {
        let g = diamond();
        let (mut dist, parent) = analysis::bfs_tree(&g, 0);
        dist[3] = 1;
        assert!(check_bfs(&g, 0, &dist, &parent).is_err());
    }

    #[test]
    fn bfs_checker_rejects_bad_parent() {
        let g = diamond();
        let (dist, mut parent) = analysis::bfs_tree(&g, 0);
        parent[3] = Some(0); // 0 is not adjacent to 3
        assert!(check_bfs(&g, 0, &dist, &parent).is_err());
    }

    #[test]
    fn mis_checker() {
        let g = diamond();
        assert!(check_mis(&g, &[true, false, false, true]).is_ok());
        // not independent
        assert!(check_mis(&g, &[true, true, false, false]).is_err());
        // not maximal
        assert!(check_mis(&g, &[false, true, false, false]).is_err());
    }

    #[test]
    fn matching_checker() {
        let g = diamond();
        let mut mate = vec![None; 4];
        mate[0] = Some(1);
        mate[1] = Some(0);
        mate[2] = Some(3);
        mate[3] = Some(2);
        assert!(check_matching(&g, &mate).is_ok());
        // asymmetric
        let mut bad = vec![None; 4];
        bad[0] = Some(1);
        assert!(check_matching(&g, &bad).is_err());
        // not maximal: nothing matched
        assert!(check_matching(&g, &[None; 4]).is_err());
        // non-edge
        let mut ne = vec![None; 4];
        ne[0] = Some(3);
        ne[3] = Some(0);
        assert!(check_matching(&g, &ne).is_err());
    }

    #[test]
    fn coloring_checker() {
        let g = diamond();
        assert!(check_coloring(&g, &[0, 1, 1, 0], 2).is_ok());
        assert!(check_coloring(&g, &[0, 0, 1, 1], 2).is_err()); // improper
        assert!(check_coloring(&g, &[0, 1, 2, 0], 2).is_err()); // over palette
    }

    #[test]
    fn orientation_checker() {
        let g = gen::star(5);
        let all_in: Vec<_> = (1..5).map(|v| (v as NodeId, 0)).collect();
        assert!(check_orientation(&g, &all_in, 1).is_ok());
        assert_eq!(orientation_max_outdegree(5, &all_in), 1);
        // all-out violates bound 1
        let all_out: Vec<_> = (1..5).map(|v| (0, v as NodeId)).collect();
        assert!(check_orientation(&g, &all_out, 1).is_err());
        assert!(check_orientation(&g, &all_out, 4).is_ok());
        // duplicate edge
        let dup = vec![(1, 0), (0, 1), (2, 0), (3, 0)];
        assert!(check_orientation(&g, &dup, 4).is_err());
        // missing edge
        assert!(check_orientation(&g, &all_in[1..], 4).is_err());
    }
}
