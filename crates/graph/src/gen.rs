//! Seeded graph generators.
//!
//! The paper's bounds are parameterised by arboricity `a` and diameter `D`;
//! the generator set is chosen to sweep both independently:
//!
//! | generator | arboricity | diameter | notes |
//! |---|---|---|---|
//! | `path`, `cycle` | 1 | Θ(n) | worst-case D |
//! | `star` | 1 | 2 | worst-case Δ at a = 1 — the adversary for naive algorithms |
//! | `random_tree`, `balanced_tree` | 1 | Θ(log n)…Θ(n) | |
//! | `grid`, `triangulated_grid` | ≤ 2 / ≤ 3 | Θ(√n) | planar |
//! | `forest_union(k)` | ≤ k (≈ k) | small | direct arboricity dial |
//! | `gnp`, `gnm` | ≈ m/n | Θ(log n) | density dial |
//! | `barabasi_albert(m)` | ≤ m | Θ(log n) | heavy-tailed degrees, "social network" |
//! | `rmat(m)` | ≈ m/n | small | Graph500 recursive matrix; huge-n power law with communities |
//! | `hyperbolic(α, c)` | heavy-tailed | Θ(log n) | Krioukov disk; power-law exponent 2α+1, strong clustering |
//! | `complete` | ⌈n/2⌉ | 1 | max arboricity |
//!
//! All generators take explicit seeds — reruns are reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, GraphBuilder, WeightedGraph};
use crate::{NodeId, Weight};

/// Path 0–1–…–(n−1). Arboricity 1, diameter n−1.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n as NodeId).map(|v| (v - 1, v)))
}

/// Cycle on n nodes (n ≥ 3). Arboricity 2 (just barely), diameter ⌊n/2⌋.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    Graph::from_edges(n, (0..n as NodeId).map(|v| (v, (v + 1) % n as NodeId)))
}

/// Star with center 0. Arboricity 1, maximum degree n−1 — the motivating
/// adversary for node-capacitated communication (§2.2, §5).
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n as NodeId).map(|v| (0, v)))
}

/// Complete graph. Arboricity ⌈n/2⌉.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Complete `arity`-ary tree with n nodes (node v's parent is (v−1)/arity).
pub fn balanced_tree(n: usize, arity: usize) -> Graph {
    assert!(arity >= 1);
    Graph::from_edges(
        n,
        (1..n as NodeId).map(move |v| ((v - 1) / arity as NodeId, v)),
    )
}

/// Uniform-attachment random tree: node v picks a parent uniformly from
/// `0..v`. Arboricity 1, expected diameter Θ(log n).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    Graph::from_edges(n, (1..n as NodeId).map(|v| (rng.gen_range(0..v), v)))
}

/// Union of `k` independent uniform-attachment spanning trees (deduplicated).
/// Arboricity ≤ k by Nash-Williams (edges partition into k forests) and
/// ≈ k for k ≪ n — the direct dial for the `a` parameter in experiments.
pub fn forest_union(n: usize, k: usize, seed: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    for t in 0..k {
        let mut rng = SmallRng::seed_from_u64(seed ^ (0x5eed_0000 + t as u64));
        // offset the root per tree so the unions overlap less
        for v in 1..n as NodeId {
            let p = rng.gen_range(0..v);
            b.add_edge(p, v);
        }
    }
    b.build()
}

/// `rows × cols` grid. Planar, arboricity ≤ 2, diameter rows+cols−2.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let at = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    b.build()
}

/// Grid plus one diagonal per cell: still planar (a triangulation-like
/// mesh), arboricity ≤ 3 — the "planar graph" family from §1.3/§2.1.
pub fn triangulated_grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let at = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(at(r, c), at(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols {
                b.add_edge(at(r, c), at(r + 1, c + 1));
            }
        }
    }
    b.build()
}

/// Erdős–Rényi G(n, p).
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if p >= 1.0 {
        return complete(n);
    }
    if p > 0.0 {
        // geometric skipping for sparse p
        let log1mp = (1.0 - p).ln();
        let total = n * (n - 1) / 2;
        let mut i: i64 = -1;
        loop {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = (r.ln() / log1mp).floor() as i64 + 1;
            i += skip;
            if i >= total as i64 {
                break;
            }
            let (u, v) = unrank_pair(i as usize, n);
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// G(n, m): exactly `m` distinct uniform edges (m ≤ n(n−1)/2).
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let total = n * (n - 1) / 2;
    assert!(m <= total, "too many edges requested");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < m {
        chosen.insert(rng.gen_range(0..total));
    }
    Graph::from_edges(n, chosen.into_iter().map(|i| unrank_pair(i, n)))
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m` existing nodes with probability proportional to degree.
/// Degeneracy ≤ m, hence arboricity ≤ m; degrees are heavy-tailed —
/// the "social network" input from the paper's introduction.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && n > m);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // repeated-endpoint list implements preferential attachment
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // seed clique on the first m+1 nodes
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m as NodeId + 1)..n as NodeId {
        let mut targets = std::collections::BTreeSet::new();
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            targets.insert(t);
        }
        for &t in &targets {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// R-MAT recursive-matrix graph (Chakrabarti–Zhan–Faloutsos; the
/// Graph500 generator): `m` edge samples drawn by recursively descending
/// a 2^scale × 2^scale adjacency matrix with the standard quadrant
/// probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05). Produces the
/// heavy-tailed, community-structured topology of real P2P/social
/// overlays — the paper's "millions of users" regime (§1) — at any n,
/// in O(m log n) time and O(m) memory.
///
/// `scale = ⌈log₂ n⌉`; samples landing on an endpoint ≥ n (when n is not
/// a power of two) or on the diagonal are rejected and redrawn, so all
/// `m` samples land on valid pairs. Duplicate pairs are deduplicated by
/// the CSR freeze, so the final edge count is ≤ `m` (duplicates are
/// exactly the multi-edges RMAT naturally produces).
///
/// Sampling is *block-seeded*: the `m` accepted samples are split into
/// fixed blocks of [`RMAT_BLOCK`] draws, block `k` running its own RNG
/// stream derived from `(seed, k)`. Block 0's stream is the plain
/// `seed_from_u64(seed)` stream, so every graph with `m ≤ RMAT_BLOCK`
/// is bit-for-bit the graph earlier single-stream revisions produced.
/// Because a block's samples depend only on `(seed, k)` — never on which
/// thread ran it — the canonical edge list is byte-identical at every
/// thread count.
pub fn rmat(n: usize, m: usize, seed: u64) -> Graph {
    rmat_threads(n, m, seed, 1)
}

/// Accepted R-MAT samples per independently seeded block. Each block is
/// a unit of deterministic parallel work; see [`rmat`].
pub const RMAT_BLOCK: usize = 1 << 20;

/// [`rmat`] with edge sampling fanned out over `threads` scoped workers.
/// The result is byte-identical to `rmat(n, m, seed)` for every
/// `threads` value — parallelism is execution layout, never identity.
pub fn rmat_threads(n: usize, m: usize, seed: u64, threads: usize) -> Graph {
    rmat_blocked(n, m, seed, threads, RMAT_BLOCK)
}

/// Test hook: [`rmat_threads`] with an explicit block size, so identity
/// proptests can cross block boundaries without 2²⁰-sample graphs.
#[doc(hidden)]
pub fn rmat_blocked(n: usize, m: usize, seed: u64, threads: usize, block: usize) -> Graph {
    assert!(n >= 2);
    assert!(block >= 1, "block size must be positive");
    let scale = usize::BITS - (n - 1).leading_zeros(); // ⌈log₂ n⌉ for n ≥ 2
    let nblocks = m.div_ceil(block).max(1);
    let workers = threads.clamp(1, nblocks);
    // contiguous block ranges per worker; each worker samples its blocks
    // in order and sorts its run once, so the merge in `from_sorted_runs`
    // sees `workers` pre-sorted streams.
    let per = nblocks.div_ceil(workers);
    let sample_blocks = |lo: usize, hi: usize| -> Vec<(NodeId, NodeId)> {
        let mut run: Vec<(NodeId, NodeId)> =
            Vec::with_capacity(hi.saturating_sub(lo) * block.min(m));
        for k in lo..hi {
            let quota = block.min(m - k * block);
            rmat_sample_block(n, scale, quota, rmat_block_seed(seed, k), &mut run);
        }
        run.sort_unstable();
        run
    };
    let runs: Vec<Vec<(NodeId, NodeId)>> = if workers == 1 {
        vec![sample_blocks(0, nblocks)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let sample_blocks = &sample_blocks;
                    s.spawn(move || {
                        sample_blocks((w * per).min(nblocks), ((w + 1) * per).min(nblocks))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rmat worker panicked"))
                .collect()
        })
    };
    Graph::from_sorted_runs(n, runs)
}

/// Block `k`'s RNG seed. Block 0 keeps the plain seed (byte-compat with
/// the single-stream revisions for m ≤ block); later blocks mix the
/// block index through the splitmix64 increment.
fn rmat_block_seed(seed: u64, k: usize) -> u64 {
    seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Draws exactly `quota` accepted canonical pairs from one block's
/// stream, appending to `out`.
fn rmat_sample_block(
    n: usize,
    scale: u32,
    quota: usize,
    seed: u64,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    // standard Graph500 quadrant split: a | b / c | d
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut drawn = 0usize;
    while drawn < quota {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < A {
                // top-left: neither bit set
            } else if r < A + B {
                v |= 1;
            } else if r < A + B + C {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u == v || u >= n as u64 || v >= n as u64 {
            continue; // rejected; redraw with fresh randomness
        }
        out.push((u.min(v) as NodeId, u.max(v) as NodeId));
        drawn += 1;
    }
}

/// Random hyperbolic graph (Krioukov et al.): `n` points in a hyperbolic
/// disk of radius `R = 2 ln n + c`, radial density `∝ sinh(αr)` (sampled
/// by inverse CDF), angle uniform; two points connect iff their
/// hyperbolic distance is ≤ R. Degrees follow a power law with exponent
/// `γ = 2α + 1` and the graph has strong clustering — the geometric
/// model of internet/P2P topologies. Larger `c` means sparser (expected
/// degree scales with `e^{-c/2}`).
///
/// Candidate search is band-bucketed: points are grouped into unit-width
/// radial bands sorted by angle, and for each (point, band) pair only the
/// angular window that could possibly satisfy the distance condition at
/// the band's inner radius is scanned — near-linear work for α > ½
/// instead of the naive O(n²) all-pairs test, which is what makes
/// n = 10⁶ feasible.
pub fn hyperbolic(n: usize, alpha: f64, c: f64, seed: u64) -> Graph {
    hyperbolic_threads(n, alpha, c, seed, 1)
}

/// [`hyperbolic`] with the angular-window pass fanned out over `threads`
/// scoped workers. Point sampling stays a single RNG stream (it is cheap
/// and pins the geometry); the RNG-free candidate scan is partitioned by
/// source node `i`. Every qualifying pair is emitted exactly once, from
/// its smaller endpoint, so `i`-range chunks produce disjoint sorted
/// runs and the merged edge list is byte-identical at every thread
/// count.
pub fn hyperbolic_threads(n: usize, alpha: f64, c: f64, seed: u64, threads: usize) -> Graph {
    assert!(n >= 2);
    assert!(alpha > 0.0, "alpha must be positive");
    let r_max = 2.0 * (n as f64).ln() + c;
    assert!(r_max > 0.0, "c too negative: disk radius must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    // inverse CDF of the ∝ sinh(αr) radial density on [0, R]
    let denom = (alpha * r_max).cosh() - 1.0;
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let r = ((1.0 + denom * u).acosh() / alpha).max(1e-12);
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            (r, theta)
        })
        .collect();
    let cosh_r: Vec<f64> = pts.iter().map(|p| p.0.cosh()).collect();
    let sinh_r: Vec<f64> = pts.iter().map(|p| p.0.sinh()).collect();
    let cosh_rmax = r_max.cosh();

    // unit-width radial bands, each sorted by angle
    let nbands = r_max.ceil() as usize;
    let mut bands: Vec<Vec<(f64, u32)>> = vec![Vec::new(); nbands.max(1)];
    for (i, &(r, theta)) in pts.iter().enumerate() {
        let bi = (r as usize).min(nbands.saturating_sub(1));
        bands[bi].push((theta, i as u32));
    }
    for band in &mut bands {
        band.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }

    // Scans sources `lo_i..hi_i` against every band and returns the
    // sorted run of canonical pairs they own. RNG-free: safe to run on
    // any partition of the i-range without touching determinism.
    let scan_sources = |lo_i: usize, hi_i: usize| -> Vec<(NodeId, NodeId)> {
        let mut out: Vec<(NodeId, NodeId)> = Vec::new();
        for i in lo_i..hi_i {
            let (_, theta_i) = pts[i];
            for (bi, band) in bands.iter().enumerate() {
                if band.is_empty() {
                    continue;
                }
                // widest angular window vs any point in this band: evaluated at
                // the band's inner radius (the condition is monotone in r_j)
                let rb = (bi as f64).max(1e-12);
                let thresh = (cosh_r[i] * rb.cosh() - cosh_rmax) / (sinh_r[i] * rb.sinh());
                if thresh > 1.0 {
                    continue; // no point in this band can be close enough
                }
                // scans this band's candidates with angle in [lo, hi] (no
                // wraparound inside one call; wrapped windows are split
                // into two calls below)
                let mut scan = |lo: f64, hi: f64| {
                    let from = band.partition_point(|&(t, _)| t < lo);
                    for &(theta_j, j) in &band[from..] {
                        if theta_j > hi {
                            break;
                        }
                        let j = j as usize;
                        if j <= i {
                            continue; // the pair is found from its smaller endpoint
                        }
                        let dtheta = (pts[i].1 - theta_j).abs();
                        let dtheta = dtheta.min(std::f64::consts::TAU - dtheta);
                        let cosh_d = cosh_r[i] * cosh_r[j] - sinh_r[i] * sinh_r[j] * dtheta.cos();
                        if cosh_d <= cosh_rmax {
                            out.push((i as NodeId, j as NodeId));
                        }
                    }
                };
                if thresh <= -1.0 {
                    // every angle qualifies as a candidate
                    scan(f64::NEG_INFINITY, f64::INFINITY);
                    continue;
                }
                let w = thresh.acos();
                let (lo, hi) = (theta_i - w, theta_i + w);
                scan(lo.max(0.0), hi);
                if lo < 0.0 {
                    scan(lo + std::f64::consts::TAU, f64::INFINITY);
                }
                if hi > std::f64::consts::TAU {
                    scan(f64::NEG_INFINITY, hi - std::f64::consts::TAU);
                }
            }
        }
        out.sort_unstable();
        out
    };

    let workers = threads.clamp(1, n);
    let chunk = n.div_ceil(workers);
    let runs: Vec<Vec<(NodeId, NodeId)>> = if workers == 1 {
        vec![scan_sources(0, n)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let scan_sources = &scan_sources;
                    s.spawn(move || scan_sources(w * chunk, ((w + 1) * chunk).min(n)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("hyperbolic worker panicked"))
                .collect()
        })
    };
    Graph::from_sorted_runs(n, runs)
}

/// Random geometric graph (unit-disk model): `n` points uniform in the
/// unit square, edges between pairs within distance `radius`. The standard
/// model for ad-hoc wireless meshes — the "cheap links" of the paper's
/// hybrid-network motivation (§1). Connectivity threshold is around
/// `radius ≈ √(ln n / (π n))`.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let r2 = radius * radius;
    // grid bucketing: only compare points in neighboring cells
    let cell = radius.max(1e-9);
    let cells = (1.0 / cell).ceil() as i64;
    let mut buckets: std::collections::BTreeMap<(i64, i64), Vec<u32>> =
        std::collections::BTreeMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        let key = ((x / cell) as i64, (y / cell) as i64);
        buckets.entry(key).or_default().push(i as u32);
    }
    let mut b = GraphBuilder::new(n);
    for (&(cx, cy), members) in &buckets {
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx > cells || ny > cells {
                    continue;
                }
                if let Some(others) = buckets.get(&(nx, ny)) {
                    for &u in members {
                        for &v in others {
                            if u < v {
                                let (x1, y1) = pts[u as usize];
                                let (x2, y2) = pts[v as usize];
                                let d2 = (x1 - x2).powi(2) + (y1 - y2).powi(2);
                                if d2 <= r2 {
                                    b.add_edge(u, v);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Random bipartite graph between parts `{0..a}` and `{a..a+b}`.
pub fn bipartite(a: usize, b_count: usize, p: f64, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = a + b_count;
    let mut g = GraphBuilder::new(n);
    for u in 0..a as NodeId {
        for v in a as NodeId..n as NodeId {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g.build()
}

/// Maps a linear index in `[0, n(n−1)/2)` to the corresponding unordered
/// pair, row-major over u < v.
fn unrank_pair(mut i: usize, n: usize) -> (NodeId, NodeId) {
    for u in 0..n - 1 {
        let row = n - 1 - u;
        if i < row {
            return (u as NodeId, (u + 1 + i) as NodeId);
        }
        i -= row;
    }
    unreachable!("index out of range");
}

/// Assigns uniform random integer weights in `{1..=w_max}` to a graph's
/// edges (the §3 MST input regime, `W = poly(n)`).
///
/// Weights are drawn in canonical [`Graph::edges`] order — the same
/// stream the original triple-based path consumed — and scattered into
/// the already-frozen CSR, so the result is byte-identical to rebuilding
/// from `(u, v, w)` triples at a fraction of the cost.
pub fn with_random_weights(g: &Graph, w_max: Weight, seed: u64) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let weights: Vec<Weight> = (0..g.m()).map(|_| rng.gen_range(1..=w_max)).collect();
    WeightedGraph::from_graph_and_weights(g.clone(), weights)
}

/// Assigns *distinct* weights (a random permutation of `1..=m`), which makes
/// the MST unique — convenient for exact edge-set comparisons in tests.
pub fn with_distinct_weights(g: &Graph, seed: u64) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = g.m();
    let mut perm: Vec<Weight> = (1..=m as Weight).collect();
    // Fisher-Yates
    for i in (1..m).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    WeightedGraph::from_graph_and_weights(g.clone(), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn path_cycle_star_shapes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        let s = star(6);
        assert_eq!(s.m(), 5);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.degree(3), 1);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(7);
        assert_eq!(g.m(), 21);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn trees_are_trees() {
        for (name, g) in [
            ("balanced", balanced_tree(30, 3)),
            ("random", random_tree(30, 5)),
        ] {
            assert_eq!(g.m(), 29, "{name} edge count");
            assert_eq!(
                analysis::connected_components(&g).count,
                1,
                "{name} connectivity"
            );
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 3 * 5); // horizontal + vertical
        let tg = triangulated_grid(4, 5);
        assert_eq!(tg.m(), g.m() + 3 * 4);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn gnp_density_close_to_expectation() {
        let n = 200;
        let p = 0.1;
        let g = gnp(n, p, 42);
        let expect = (n * (n - 1) / 2) as f64 * p;
        let got = g.m() as f64;
        assert!(
            (got - expect).abs() < 0.2 * expect,
            "m = {got}, expect ≈ {expect}"
        );
    }

    #[test]
    fn gnm_exact_count() {
        let g = gnm(50, 100, 9);
        assert_eq!(g.m(), 100);
    }

    #[test]
    fn unrank_pair_covers_all() {
        let n = 7;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..n * (n - 1) / 2 {
            let (u, v) = unrank_pair(i, n);
            assert!(u < v && (v as usize) < n);
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn ba_graph_degeneracy_bounded() {
        let g = barabasi_albert(200, 3, 7);
        let (degeneracy, _) = analysis::degeneracy(&g);
        assert!(degeneracy <= 3 + 3, "BA(m=3) degeneracy was {degeneracy}");
        assert!(g.max_degree() > 8, "should be heavy-tailed");
    }

    #[test]
    fn forest_union_arboricity_bounded() {
        let g = forest_union(100, 4, 11);
        let (lo, hi) = analysis::arboricity_bounds(&g);
        assert!(hi <= 8, "upper bound {hi}");
        assert!(lo >= 2, "lower bound {lo}");
    }

    #[test]
    fn bipartite_has_no_intra_part_edges() {
        let g = bipartite(10, 15, 0.5, 3);
        for (u, v) in g.edges() {
            assert!((u < 10) != (v < 10), "edge inside one part: {u}-{v}");
        }
    }

    #[test]
    fn distinct_weights_are_distinct() {
        let g = gnm(40, 80, 5);
        let wg = with_distinct_weights(&g, 6);
        let mut ws: Vec<_> = wg.weighted_edges().map(|(_, _, w)| w).collect();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), 80);
    }

    #[test]
    fn random_weights_in_range() {
        let g = gnm(30, 60, 5);
        let wg = with_random_weights(&g, 100, 6);
        for (_, _, w) in wg.weighted_edges() {
            assert!((1..=100).contains(&w));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gnp(50, 0.2, 7), gnp(50, 0.2, 7));
        assert_ne!(gnp(50, 0.2, 7), gnp(50, 0.2, 8));
        assert_eq!(barabasi_albert(60, 2, 1), barabasi_albert(60, 2, 1));
        assert_eq!(random_tree(60, 2), random_tree(60, 2));
        assert_eq!(random_geometric(60, 0.2, 3), random_geometric(60, 0.2, 3));
    }

    #[test]
    fn rmat_shape_and_determinism() {
        let g = rmat(500, 2000, 7); // n not a power of two: exercises rejection
        assert_eq!(g.n(), 500);
        assert!(g.m() <= 2000);
        assert!(g.m() > 1000, "dedup should not collapse most samples");
        assert_eq!(g, rmat(500, 2000, 7));
        assert_ne!(g, rmat(500, 2000, 8));
        // recursive-matrix skew concentrates degree on low ids
        let low: usize = (0..50).map(|v| g.degree(v)).sum();
        let high: usize = (450..500).map(|v| g.degree(v as NodeId)).sum();
        assert!(
            low > 4 * high,
            "expected heavy low-id degree mass, got {low} vs {high}"
        );
    }

    #[test]
    fn hyperbolic_matches_brute_force() {
        // the band-bucketed candidate search must find exactly the pairs
        // within hyperbolic distance R
        let n = 300;
        let (alpha, c, seed) = (0.75, -1.0, 11);
        let g = hyperbolic(n, alpha, c, seed);
        let r_max = 2.0 * (n as f64).ln() + c;
        // rebuild points with the same stream to brute-force distances
        let mut rng = SmallRng::seed_from_u64(seed);
        let denom = (alpha * r_max).cosh() - 1.0;
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                let r = ((1.0 + denom * u).acosh() / alpha).max(1e-12);
                (r, rng.gen::<f64>() * std::f64::consts::TAU)
            })
            .collect();
        let mut expect = 0;
        for u in 0..n {
            for v in u + 1..n {
                let dtheta = (pts[u].1 - pts[v].1).abs();
                let dtheta = dtheta.min(std::f64::consts::TAU - dtheta);
                let cosh_d = pts[u].0.cosh() * pts[v].0.cosh()
                    - pts[u].0.sinh() * pts[v].0.sinh() * dtheta.cos();
                if cosh_d <= r_max.cosh() {
                    expect += 1;
                    assert!(g.has_edge(u as NodeId, v as NodeId), "missing edge {u}-{v}");
                }
            }
        }
        assert_eq!(g.m(), expect);
        assert!(expect > 0, "test graph should not be empty");
    }

    #[test]
    fn hyperbolic_deterministic_and_heavy_tailed() {
        let g = hyperbolic(800, 0.75, 0.0, 3);
        assert_eq!(g, hyperbolic(800, 0.75, 0.0, 3));
        assert_ne!(g, hyperbolic(800, 0.75, 0.0, 4));
        // power-law degrees: the max degree dwarfs the mean
        let mean = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(
            g.max_degree() as f64 > 5.0 * mean,
            "max {} vs mean {mean}",
            g.max_degree()
        );
        // larger c → sparser
        let sparser = hyperbolic(800, 0.75, 2.0, 3);
        assert!(sparser.m() < g.m());
    }

    #[test]
    fn geometric_graph_matches_brute_force() {
        // the grid-bucketed implementation must find exactly the pairs
        // within the radius
        let n = 80;
        let r = 0.18;
        let g = random_geometric(n, r, 9);
        // rebuild points with the same stream to brute-force distances
        let mut rng = SmallRng::seed_from_u64(9);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let mut expect = 0;
        for u in 0..n {
            for v in u + 1..n {
                let d2 = (pts[u].0 - pts[v].0).powi(2) + (pts[u].1 - pts[v].1).powi(2);
                if d2 <= r * r {
                    expect += 1;
                    assert!(g.has_edge(u as NodeId, v as NodeId), "missing edge {u}-{v}");
                }
            }
        }
        assert_eq!(g.m(), expect);
    }

    #[test]
    fn geometric_density_scales_with_radius() {
        let sparse = random_geometric(200, 0.05, 4);
        let dense = random_geometric(200, 0.2, 4);
        assert!(dense.m() > 4 * sparse.m());
    }
}
