//! Structural analyses: components, BFS, diameter, degeneracy, arboricity.
//!
//! These are *centralised reference computations* used to characterise
//! workloads (which `a`, which `D` a generated graph actually has) and to
//! verify distributed outputs — they are never run inside the simulated
//! network.

use crate::dsu::Dsu;
use crate::graph::Graph;
use crate::NodeId;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Component labelling.
pub struct Components {
    /// `label[v]` = smallest node id in v's component.
    pub label: Vec<NodeId>,
    /// Number of connected components.
    pub count: usize,
}

/// Labels connected components.
pub fn connected_components(g: &Graph) -> Components {
    let mut dsu = Dsu::new(g.n());
    for (u, v) in g.edges() {
        dsu.union(u, v);
    }
    let mut label = vec![0 as NodeId; g.n()];
    let mut mins: Vec<NodeId> = (0..g.n() as NodeId).collect();
    for v in 0..g.n() as NodeId {
        let r = dsu.find(v) as usize;
        mins[r] = mins[r].min(v);
    }
    for v in 0..g.n() as NodeId {
        label[v as usize] = mins[dsu.find(v) as usize];
    }
    Components {
        label,
        count: dsu.component_count(),
    }
}

/// BFS distances from `src`, `UNREACHABLE` where disconnected.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS tree: `(distance, parent)` where the parent is the smallest-id
/// neighbor on a shortest path (the paper's tie-breaking rule, §5.1).
pub fn bfs_tree(g: &Graph, src: NodeId) -> (Vec<u32>, Vec<Option<NodeId>>) {
    let dist = bfs_distances(g, src);
    let mut parent = vec![None; g.n()];
    for v in 0..g.n() as NodeId {
        if v == src || dist[v as usize] == UNREACHABLE {
            continue;
        }
        parent[v as usize] = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| dist[u as usize] + 1 == dist[v as usize])
            .min();
    }
    (dist, parent)
}

/// Exact diameter of the (connected part of the) graph by running BFS from
/// every node. Quadratic — fine at simulator scales.
pub fn diameter(g: &Graph) -> u32 {
    let mut best = 0;
    for src in 0..g.n() as NodeId {
        let d = bfs_distances(g, src);
        for &x in &d {
            if x != UNREACHABLE {
                best = best.max(x);
            }
        }
    }
    best
}

/// Degeneracy and a degeneracy ordering (iterated minimum-degree peeling,
/// linear time via bucket queues).
///
/// Degeneracy `d` sandwiches arboricity: `a ≤ d ≤ 2a − 1`.
pub fn degeneracy(g: &Graph) -> (usize, Vec<NodeId>) {
    let n = g.n();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut degree: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    let maxd = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); maxd + 1];
    for v in 0..n as NodeId {
        buckets[degree[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // find the lowest non-empty bucket with a live node
        let mut d = cursor.min(maxd);
        loop {
            while d <= maxd && buckets[d].is_empty() {
                d += 1;
            }
            if d > maxd {
                unreachable!("ran out of nodes");
            }
            let v = *buckets[d].last().unwrap();
            if removed[v as usize] || degree[v as usize] != d {
                buckets[d].pop();
                continue;
            }
            break;
        }
        let v = buckets[d].pop().unwrap();
        removed[v as usize] = true;
        degeneracy = degeneracy.max(d);
        order.push(v);
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                let dw = degree[w as usize];
                degree[w as usize] = dw - 1;
                buckets[dw - 1].push(w);
            }
        }
        cursor = d.saturating_sub(1);
    }
    (degeneracy, order)
}

/// Lower and upper bounds on the arboricity.
///
/// * lower: Nash-Williams density of the whole graph, `⌈m / (n − 1)⌉`
///   (the maximising subgraph only helps, so this is always a valid lower
///   bound), and at least 1 if any edge exists;
/// * upper: the degeneracy (any graph with degeneracy d has arboricity ≤ d,
///   by orienting edges along the peeling order).
pub fn arboricity_bounds(g: &Graph) -> (usize, usize) {
    if g.m() == 0 {
        return (0, 0);
    }
    let comps = connected_components(g);
    // Nash-Williams over each connected component (denser component gives a
    // better bound than the whole graph when disconnected).
    let mut nodes = vec![0usize; g.n()];
    let mut edges = vec![0usize; g.n()];
    for v in 0..g.n() as NodeId {
        nodes[comps.label[v as usize] as usize] += 1;
    }
    for (u, _) in g.edges() {
        edges[comps.label[u as usize] as usize] += 1;
    }
    let mut lo = 1;
    for v in 0..g.n() {
        if nodes[v] >= 2 {
            lo = lo.max(edges[v].div_ceil(nodes[v] - 1));
        }
    }
    let (hi, _) = degeneracy(g);
    (lo, hi.max(1))
}

/// A greedy `d`-orientation from the degeneracy ordering: every edge points
/// from the endpoint peeled earlier to the one peeled later, giving
/// outdegree ≤ degeneracy. Used as the *reference* orientation quality
/// against which the distributed Orientation Algorithm (§4) is compared.
pub fn degeneracy_orientation(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let (_, order) = degeneracy(g);
    let mut pos = vec![0u32; g.n()];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i as u32;
    }
    g.edges()
        .map(|(u, v)| {
            if pos[u as usize] < pos[v as usize] {
                (u, v)
            } else {
                (v, u)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn components_of_disjoint_paths() {
        let mut edges = Vec::new();
        edges.extend([(0, 1), (1, 2)]); // component {0,1,2}
        edges.extend([(3, 4)]); // component {3,4}
        let g = Graph::from_edges(6, edges); // node 5 isolated
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.label[0], 0);
        assert_eq!(c.label[2], 0);
        assert_eq!(c.label[4], 3);
        assert_eq!(c.label[5], 5);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = gen::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn bfs_tree_parents_minimal() {
        // diamond: 0-1, 0-2, 1-3, 2-3 — node 3 has two shortest-path
        // parents; rule picks the smaller id (1).
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (dist, parent) = bfs_tree(&g, 0);
        assert_eq!(dist, vec![0, 1, 1, 2]);
        assert_eq!(parent[3], Some(1));
        assert_eq!(parent[0], None);
    }

    #[test]
    fn diameter_of_shapes() {
        assert_eq!(diameter(&gen::path(10)), 9);
        assert_eq!(diameter(&gen::star(10)), 2);
        assert_eq!(diameter(&gen::cycle(10)), 5);
        assert_eq!(diameter(&gen::grid(4, 6)), 8);
        assert_eq!(diameter(&gen::complete(5)), 1);
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        assert_eq!(degeneracy(&gen::path(10)).0, 1);
        assert_eq!(degeneracy(&gen::star(10)).0, 1);
        assert_eq!(degeneracy(&gen::cycle(10)).0, 2);
        assert_eq!(degeneracy(&gen::complete(6)).0, 5);
        assert_eq!(degeneracy(&gen::grid(5, 5)).0, 2);
    }

    #[test]
    fn degeneracy_order_is_permutation() {
        let g = gen::gnp(80, 0.1, 3);
        let (_, order) = degeneracy(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..80).collect::<Vec<_>>());
    }

    #[test]
    fn arboricity_bounds_sane() {
        // tree: exactly 1
        let (lo, hi) = arboricity_bounds(&gen::random_tree(50, 1));
        assert_eq!((lo, hi), (1, 1));
        // complete graph K6: arboricity 3 (= ceil(15/5)); degeneracy 5
        let (lo, hi) = arboricity_bounds(&gen::complete(6));
        assert_eq!(lo, 3);
        assert_eq!(hi, 5);
        // empty
        assert_eq!(arboricity_bounds(&Graph::empty(5)), (0, 0));
        // lower ≤ upper always
        for seed in 0..5 {
            let g = gen::gnp(60, 0.15, seed);
            let (lo, hi) = arboricity_bounds(&g);
            assert!(lo <= hi, "lo {lo} hi {hi}");
        }
    }

    #[test]
    fn degeneracy_orientation_outdegree_bounded() {
        let g = gen::gnp(100, 0.08, 9);
        let (d, _) = degeneracy(&g);
        let orient = degeneracy_orientation(&g);
        let mut outdeg = vec![0usize; g.n()];
        for &(u, _) in &orient {
            outdeg[u as usize] += 1;
        }
        assert!(
            outdeg.iter().all(|&x| x <= d),
            "outdegree exceeded degeneracy {d}"
        );
        assert_eq!(orient.len(), g.m());
    }

    #[test]
    fn star_orientation_outdegree_one() {
        // a star has degeneracy 1, so the orientation has outdegree ≤ 1
        // everywhere (the center keeps at most the edge to the node peeled
        // after it)
        let g = gen::star(8);
        let orient = degeneracy_orientation(&g);
        let mut outdeg = vec![0usize; 8];
        for &(u, _) in &orient {
            outdeg[u as usize] += 1;
        }
        assert!(outdeg.iter().all(|&x| x <= 1), "outdegrees {outdeg:?}");
        assert_eq!(orient.len(), 7);
    }
}
