//! CSR graph storage.
//!
//! Simple undirected graphs (no self-loops, no parallel edges) in compressed
//! sparse row form: neighbor lists are contiguous and sorted, so
//! `neighbors(u)` is a slice and adjacency tests are binary searches.

use serde::{Deserialize, Serialize};

use crate::{NodeId, Weight};

/// An undirected simple graph on nodes `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    offsets: Vec<u32>,
    adj: Vec<NodeId>,
}

/// Incrementally collects edges, then freezes into a [`Graph`].
/// Duplicate edges and self-loops are discarded.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge endpoint out of range"
        );
        if u != v {
            self.edges.push((u.min(v), u.max(v)));
        }
        self
    }

    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, it: I) -> &mut Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_canonical(self.n, &self.edges)
    }
}

impl Graph {
    /// Freezes a *canonical* edge list — sorted ascending, deduplicated,
    /// every pair `(u, v)` with `u < v < n` — into CSR form.
    ///
    /// One cursor-scatter pass over the sorted list fills every neighbour
    /// slice already sorted: a node w's list receives first the endpoints
    /// u < w of edges (u, w) — in ascending u, because the list is sorted
    /// by first endpoint — and then the endpoints v > w of edges (w, v),
    /// in ascending v; every value of the first kind is < w < every value
    /// of the second kind, so the whole slice is ascending.
    pub(crate) fn from_canonical(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "not canonical");
        debug_assert!(edges.iter().all(|&(u, v)| u < v && (v as usize) < n));
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj = vec![0 as NodeId; 2 * edges.len()];
        for &(u, v) in edges {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        debug_assert!(
            (0..n).all(|u| { adj[offsets[u] as usize..offsets[u + 1] as usize].is_sorted() })
        );
        Graph { n, offsets, adj }
    }

    /// Merges pre-sorted canonicalised edge runs into one canonical list
    /// and freezes the CSR — the streaming back half of the parallel
    /// generators. Each run must be sorted ascending with `u < v` pairs;
    /// duplicates within and across runs are dropped during the merge, so
    /// the result is identical to concatenating the runs through
    /// [`GraphBuilder`] — without a second full-list sort.
    pub fn from_sorted_runs(n: usize, runs: Vec<Vec<(NodeId, NodeId)>>) -> Graph {
        let mut runs: Vec<Vec<(NodeId, NodeId)>> =
            runs.into_iter().filter(|r| !r.is_empty()).collect();
        debug_assert!(runs.iter().all(|r| r.is_sorted()));
        if runs.len() == 1 {
            let mut run = runs.pop().expect("one run");
            run.dedup();
            return Graph::from_canonical(n, &run);
        }
        // Small-k tournament-free merge: with a handful of worker runs a
        // linear min-scan per element beats a heap.
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut merged: Vec<(NodeId, NodeId)> = Vec::with_capacity(total);
        let mut idx = vec![0usize; runs.len()];
        loop {
            let mut best: Option<(usize, (NodeId, NodeId))> = None;
            for (r, run) in runs.iter().enumerate() {
                if idx[r] < run.len() {
                    let e = run[idx[r]];
                    if best.is_none_or(|(_, be)| e < be) {
                        best = Some((r, e));
                    }
                }
            }
            let Some((r, e)) = best else { break };
            idx[r] += 1;
            if merged.last() != Some(&e) {
                merged.push(e);
            }
        }
        Graph::from_canonical(n, &merged)
    }

    /// Builds a graph directly from an edge list.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(edges);
        b.build()
    }

    /// The empty graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Graph::from_edges(n, std::iter::empty())
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n as NodeId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    pub fn max_degree(&self) -> usize {
        (0..self.n as NodeId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (2 * self.m()) as f64 / self.n as f64
        }
    }
}

/// Serialize graphs as `(n, edge list)` — stable and compact.
impl Serialize for Graph {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        let edges: Vec<(NodeId, NodeId)> = self.edges().collect();
        (self.n as u64, edges).serialize(ser)
    }
}

impl<'de> Deserialize<'de> for Graph {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let (n, edges): (u64, Vec<(NodeId, NodeId)>) = Deserialize::deserialize(de)?;
        Ok(Graph::from_edges(n as usize, edges))
    }
}

/// A graph with integral edge weights in `{1..W}` (§3's MST setting).
///
/// Weights are stored per directed adjacency slot so that
/// `weight_of(u, v)` is a binary search away from either endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedGraph {
    graph: Graph,
    /// Parallel to the CSR adjacency array.
    weights: Vec<Weight>,
}

impl WeightedGraph {
    /// Builds from `(u, v, w)` triples. Duplicate edges keep the first
    /// weight encountered (after canonicalisation and sorting).
    pub fn from_weighted_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, Weight)>,
    ) -> Self {
        let mut canon: Vec<((NodeId, NodeId), Weight)> = edges
            .into_iter()
            .filter(|&(u, v, _)| u != v)
            .map(|(u, v, w)| ((u.min(v), u.max(v)), w))
            .collect();
        canon.sort_unstable_by_key(|&(e, _)| e);
        canon.dedup_by_key(|&mut (e, _)| e);
        let graph = Graph::from_edges(n, canon.iter().map(|&(e, _)| e));
        let mut weights = vec![0 as Weight; graph.adj.len()];
        for &((u, v), w) in &canon {
            let iu = graph.offsets[u as usize] as usize
                + graph.neighbors(u).binary_search(&v).expect("edge present");
            let iv = graph.offsets[v as usize] as usize
                + graph.neighbors(v).binary_search(&u).expect("edge present");
            weights[iu] = w;
            weights[iv] = w;
        }
        WeightedGraph { graph, weights }
    }

    /// Attaches weights to an already-frozen graph, one per canonical
    /// edge in [`Graph::edges`] order. The same cursor-scatter argument
    /// that sorts the adjacency lists places each weight in both directed
    /// slots in a single pass — no binary searches, which is what makes
    /// weighting a 10⁷-node graph affordable.
    pub fn from_graph_and_weights(graph: Graph, edge_weights: Vec<Weight>) -> Self {
        assert_eq!(edge_weights.len(), graph.m(), "one weight per edge");
        let mut cursor: Vec<u32> = graph.offsets[..graph.n].to_vec();
        let mut weights = vec![0 as Weight; graph.adj.len()];
        for ((u, v), w) in graph.edges().zip(edge_weights) {
            weights[cursor[u as usize] as usize] = w;
            cursor[u as usize] += 1;
            weights[cursor[v as usize] as usize] = w;
            cursor[v as usize] += 1;
        }
        WeightedGraph { graph, weights }
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    pub fn n(&self) -> usize {
        self.graph.n()
    }

    pub fn m(&self) -> usize {
        self.graph.m()
    }

    pub fn degree(&self, u: NodeId) -> usize {
        self.graph.degree(u)
    }

    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        self.graph.neighbors(u)
    }

    /// Neighbors of `u` with the corresponding edge weights.
    pub fn weighted_neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.graph.offsets[u as usize] as usize;
        let hi = self.graph.offsets[u as usize + 1] as usize;
        self.graph.adj[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    pub fn weight_of(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let lo = self.graph.offsets[u as usize] as usize;
        self.graph
            .neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.weights[lo + i])
    }

    /// Iterates each weighted edge once, `(u, v, w)` with `u < v`.
    pub fn weighted_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.graph
            .edges()
            .map(move |(u, v)| (u, v, self.weight_of(u, v).expect("edge exists")))
    }

    pub fn max_weight(&self) -> Weight {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Total weight of an edge set (e.g. a spanning tree).
    pub fn total_weight(&self, edges: &[(NodeId, NodeId)]) -> Weight {
        edges
            .iter()
            .map(|&(u, v)| self.weight_of(u, v).expect("edge in graph"))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn builder_dedups_and_drops_loops() {
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (2, 2), (1, 3), (1, 3)]);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 1));
        assert!(!g.has_edge(2, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = Graph::from_edges(5, [(3, 1), (3, 0), (3, 4), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        for v in 0..3 {
            assert!(g.has_edge(v, 3));
            assert!(g.has_edge(3, v));
        }
        assert_eq!(g.degree(3), 4);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn one_pass_build_yields_sorted_adjacency() {
        // adversarial insert order + duplicates across a denser graph: the
        // cursor-scatter over the sorted canonical edge list must produce
        // every neighbour slice already sorted (no per-list re-sort).
        let n = 97u32;
        let edges = (0..n * 4).map(|i| {
            let u = (i * 31 + 7) % n;
            let v = (i * 17 + 3) % n;
            (u, v)
        });
        let g = Graph::from_edges(n as usize, edges);
        for u in 0..n {
            let nb = g.neighbors(u);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted list at {u}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(7);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 3);
    }

    #[test]
    fn weighted_graph_lookup_both_directions() {
        let g = WeightedGraph::from_weighted_edges(4, [(0, 1, 10), (1, 2, 20), (2, 3, 30)]);
        assert_eq!(g.weight_of(0, 1), Some(10));
        assert_eq!(g.weight_of(1, 0), Some(10));
        assert_eq!(g.weight_of(2, 3), Some(30));
        assert_eq!(g.weight_of(0, 3), None);
        assert_eq!(g.max_weight(), 30);
    }

    #[test]
    fn weighted_edges_canonical() {
        let g = WeightedGraph::from_weighted_edges(3, [(2, 1, 5), (1, 0, 3)]);
        let e: Vec<_> = g.weighted_edges().collect();
        assert_eq!(e, vec![(0, 1, 3), (1, 2, 5)]);
        assert_eq!(g.total_weight(&[(0, 1), (1, 2)]), 8);
    }

    #[test]
    fn weighted_neighbors_pairs() {
        let g = WeightedGraph::from_weighted_edges(4, [(1, 0, 7), (1, 2, 8), (1, 3, 9)]);
        let wn: Vec<_> = g.weighted_neighbors(1).collect();
        assert_eq!(wn, vec![(0, 7), (2, 8), (3, 9)]);
    }

    #[test]
    fn graph_serde_roundtrip() {
        let g = triangle();
        let s = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&s).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn weighted_serde_roundtrip() {
        let g = WeightedGraph::from_weighted_edges(4, [(0, 1, 10), (1, 2, 20)]);
        let s = serde_json::to_string(&g).unwrap();
        let back: WeightedGraph = serde_json::from_str(&s).unwrap();
        assert_eq!(g, back);
    }
}
