//! Parallel-generation identity: the canonical edge list a generator
//! produces must be byte-identical at every thread count — `threads` is
//! execution layout, never part of a graph's identity. These tests pin
//! the block-seeded R-MAT sampler and the band-parallel hyperbolic scan
//! against their sequential paths, and the streaming CSR constructors
//! against the reference builder.

use ncc_graph::gen;
use ncc_graph::{Graph, NodeId, WeightedGraph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Block-parallel R-MAT equals the sequential path at threads
    /// {1, 2, 4, 8}. A small explicit block size forces the sweep across
    /// block boundaries (several blocks per worker, a partial tail
    /// block) that `RMAT_BLOCK = 2^20` would make unaffordable here.
    #[test]
    fn rmat_identical_across_thread_counts(
        n in 2usize..400,
        m in 0usize..1500,
        seed in any::<u64>(),
        block in 16usize..300,
    ) {
        let reference = gen::rmat_blocked(n, m, seed, 1, block);
        for threads in [2usize, 4, 8] {
            let parallel = gen::rmat_blocked(n, m, seed, threads, block);
            prop_assert_eq!(&reference, &parallel, "threads={}", threads);
        }
    }

    /// With a single block (m ≤ block) every path — old single-stream,
    /// blocked sequential, blocked parallel — is the same stream.
    #[test]
    fn rmat_single_block_matches_plain(
        n in 2usize..300,
        m in 0usize..800,
        seed in any::<u64>(),
    ) {
        let plain = gen::rmat(n, m, seed);
        prop_assert_eq!(&plain, &gen::rmat_blocked(n, m, seed, 4, m.max(1)));
        prop_assert_eq!(&plain, &gen::rmat_threads(n, m, seed, 8));
    }

    /// Band-parallel hyperbolic equals the sequential scan at threads
    /// {1, 2, 4, 8} across the (α, c) corners the suite uses.
    #[test]
    fn hyperbolic_identical_across_thread_counts(
        n in 2usize..250,
        alpha in 0.55f64..1.5,
        c in -1.0f64..1.5,
        seed in any::<u64>(),
    ) {
        let reference = gen::hyperbolic(n, alpha, c, seed);
        for threads in [2usize, 4, 8] {
            let parallel = gen::hyperbolic_threads(n, alpha, c, seed, threads);
            prop_assert_eq!(&reference, &parallel, "threads={}", threads);
        }
    }

    /// `from_sorted_runs` over an arbitrary partition of an edge list
    /// equals pushing everything through the reference builder.
    #[test]
    fn sorted_runs_equal_builder(
        n in 2usize..120,
        edges in collection::vec((0u32..120, 0u32..120), 0..400),
        cuts in collection::vec(0usize..400, 0..6),
    ) {
        let canon: Vec<(NodeId, NodeId)> = edges
            .iter()
            .filter(|&&(u, v)| u != v && (u as usize) < n && (v as usize) < n)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        let reference = Graph::from_edges(n, canon.iter().copied());
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (canon.len() + 1)).collect();
        cuts.push(0);
        cuts.push(canon.len());
        cuts.sort_unstable();
        let runs: Vec<Vec<(NodeId, NodeId)>> = cuts
            .windows(2)
            .map(|w| {
                let mut run = canon[w[0]..w[1]].to_vec();
                run.sort_unstable();
                run
            })
            .collect();
        prop_assert_eq!(reference, Graph::from_sorted_runs(n, runs));
    }

    /// The cursor-scatter weight constructor equals the triple-based
    /// binary-search path fed from the same RNG stream — the fast path
    /// must not move a single weight.
    #[test]
    fn weight_scatter_matches_triples(
        n in 2usize..100,
        m in 0usize..300,
        seed in any::<u64>(),
        w_max in 1u64..1000,
    ) {
        let g = gen::gnm(n, m.min(n * (n - 1) / 2), seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 1);
        let slow = WeightedGraph::from_weighted_edges(
            g.n(),
            g.edges().map(|(u, v)| (u, v, rng.gen_range(1..=w_max))),
        );
        let fast = gen::with_random_weights(&g, w_max, seed ^ 1);
        prop_assert_eq!(fast, slow);
    }
}
