//! Compiles and runs every example against the `ncc` facade.
//!
//! The examples exercise the re-export surface (`ncc::model`, `ncc::graph`,
//! `ncc::butterfly`, `ncc::core`, …) end to end; including them here means
//! `cargo test` fails the moment a facade path or a cross-crate signature
//! drifts, instead of the breakage hiding until someone runs
//! `cargo build --examples`.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[path = "../examples/social_network.rs"]
mod social_network;

#[path = "../examples/datacenter_kmachine.rs"]
mod datacenter_kmachine;

#[path = "../examples/hybrid_network.rs"]
mod hybrid_network;

#[test]
fn quickstart_runs() {
    quickstart::main();
}

#[test]
fn social_network_runs() {
    social_network::main();
}

#[test]
fn datacenter_kmachine_runs() {
    datacenter_kmachine::main();
}

#[test]
fn hybrid_network_runs() {
    hybrid_network::main();
}
