//! Property-based integration tests: the distributed algorithms against
//! centralised oracles on randomly generated inputs.
//!
//! Case counts are kept small (each case runs a full simulated network)
//! but every case covers a fresh graph, seed, and capacity configuration.

use ncc::butterfly::aggregation::aggregate;
use ncc::butterfly::{multicast, multicast_setup, self_joins, AggregationSpec, GroupId, SumU64};
use ncc::core as algo;
use ncc::graph::{check, gen, Graph};
use ncc::hashing::SharedRandomness;
use ncc::model::{Engine, NetConfig};
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = (Graph, u64)> {
    (8usize..48, 0.05f64..0.4, any::<u64>()).prop_map(|(n, p, seed)| (gen::gnp(n, p, seed), seed))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    #[test]
    fn mst_always_matches_kruskal((g, seed) in small_graph()) {
        let wg = gen::with_random_weights(&g, 200, seed ^ 1);
        let mut eng = Engine::new(NetConfig::new(g.n(), seed ^ 2));
        let shared = SharedRandomness::new(seed ^ 3);
        let r = algo::mst(&mut eng, &shared, &wg).unwrap();
        prop_assert!(check::check_mst(&wg, &r.edges).is_ok());
        prop_assert!(eng.total.clean());
    }

    #[test]
    fn orientation_always_valid((g, seed) in small_graph()) {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed ^ 4));
        let shared = SharedRandomness::new(seed ^ 5);
        let r = algo::orient(&mut eng, &shared, &g).unwrap();
        let (_, hi) = ncc::graph::analysis::arboricity_bounds(&g);
        prop_assert!(check::check_orientation(&g, &r.directed_edges(), 4 * hi.max(1)).is_ok());
        prop_assert!(eng.total.clean());
    }

    #[test]
    fn symmetry_breaking_suite_valid((g, seed) in small_graph()) {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed ^ 6));
        let shared = SharedRandomness::new(seed ^ 7);
        let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
        let m = algo::mis(&mut eng, &shared, &bt, &g).unwrap();
        prop_assert!(check::check_mis(&g, &m.in_mis).is_ok());
        let mm = algo::maximal_matching(&mut eng, &shared, &bt, &g).unwrap();
        prop_assert!(check::check_matching(&g, &mm.mate).is_ok());
        let c = algo::coloring(&mut eng, &shared, &bt.orientation, &g).unwrap();
        prop_assert!(check::check_coloring(&g, &c.colors, c.palette).is_ok());
        prop_assert!(eng.total.clean());
    }

    #[test]
    fn bfs_matches_reference((g, seed) in small_graph()) {
        let src = (seed % g.n() as u64) as u32;
        let mut eng = Engine::new(NetConfig::new(g.n(), seed ^ 8));
        let shared = SharedRandomness::new(seed ^ 9);
        let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
        let r = algo::bfs(&mut eng, &shared, &bt, &g, src).unwrap();
        prop_assert!(check::check_bfs(&g, src, &r.dist, &r.parent).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Aggregation against a local oracle: random memberships, SUM per group.
    #[test]
    fn aggregation_matches_oracle(
        n in 8usize..80,
        memb in proptest::collection::vec((0u32..64, 0u32..4, 1u64..100), 0..100),
        seed in any::<u64>(),
    ) {
        let shared = SharedRandomness::new(seed);
        let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
        let mut oracle: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for (i, (t, sub, v)) in memb.iter().enumerate() {
            let target = t % n as u32;
            let member = i % n;
            let gid = GroupId::new(target, *sub);
            memberships[member].push((gid, *v));
            *oracle.entry(gid.raw()).or_insert(0) += v;
        }
        let mut eng = Engine::new(NetConfig::new(n, seed ^ 0xA6));
        let (out, stats) = aggregate(
            &mut eng,
            &shared,
            AggregationSpec { memberships, ell2_hat: 8 },
            &SumU64,
        ).unwrap();
        let mut got: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for (node, results) in out.iter().enumerate() {
            for &(gid, v) in results {
                // delivered to the encoded target only
                prop_assert_eq!(gid.target() as usize, node);
                got.insert(gid.raw(), v);
            }
        }
        prop_assert_eq!(got, oracle);
        prop_assert!(stats.clean());
    }

    /// Multicast delivers exactly the membership lists.
    #[test]
    fn multicast_matches_memberships(
        n in 8usize..64,
        joins_raw in proptest::collection::vec((0u32..32, 0u32..64), 0..80),
        seed in any::<u64>(),
    ) {
        let shared = SharedRandomness::new(seed);
        let mut joins: Vec<Vec<GroupId>> = vec![Vec::new(); n];
        let mut expect: std::collections::BTreeSet<(usize, u64)> = Default::default();
        for (src_raw, member_raw) in joins_raw {
            let src = (src_raw % n as u32) as usize;
            let member = (member_raw % n as u32) as usize;
            let gid = GroupId::new(src as u32, 33);
            if !joins[member].contains(&gid) {
                joins[member].push(gid);
                expect.insert((member, gid.raw()));
            }
        }
        let mut eng = Engine::new(NetConfig::new(n, seed ^ 0xB7));
        let ell = joins.iter().map(Vec::len).max().unwrap_or(1).max(1);
        let (trees, _) = multicast_setup(&mut eng, &shared, self_joins(joins)).unwrap();
        let messages: Vec<Option<(GroupId, u64)>> = (0..n)
            .map(|u| Some((GroupId::new(u as u32, 33), 900 + u as u64)))
            .collect();
        let (out, stats) = multicast(&mut eng, &shared, &trees, messages, ell).unwrap();
        let mut got: std::collections::BTreeSet<(usize, u64)> = Default::default();
        for (node, results) in out.iter().enumerate() {
            for &(gid, v) in results {
                prop_assert_eq!(v, 900 + gid.target() as u64);
                got.insert((node, gid.raw()));
            }
        }
        prop_assert_eq!(got, expect);
        prop_assert!(stats.clean());
    }
}
