//! Reproducibility: identical seeds ⇒ identical executions, regardless of
//! thread count; different seeds ⇒ (almost surely) different randomized
//! outputs with identical *validity*.

use ncc::core as algo;
use ncc::graph::{check, gen};
use ncc::hashing::SharedRandomness;
use ncc::model::{Engine, NetConfig};

fn run_mis(n: usize, engine_seed: u64, shared_seed: u64, threads: usize) -> (Vec<bool>, u64) {
    let g = gen::gnp(n, 0.1, 7);
    let mut eng = Engine::new(NetConfig::new(n, engine_seed).with_threads(threads));
    let shared = SharedRandomness::new(shared_seed);
    let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
    let r = algo::mis(&mut eng, &shared, &bt, &g).unwrap();
    check::check_mis(&g, &r.in_mis).unwrap();
    (r.in_mis, eng.total.rounds)
}

#[test]
fn same_seed_same_everything() {
    let (a_out, a_rounds) = run_mis(64, 1, 2, 1);
    let (b_out, b_rounds) = run_mis(64, 1, 2, 1);
    assert_eq!(a_out, b_out);
    assert_eq!(a_rounds, b_rounds);
}

#[test]
fn parallel_engine_is_bit_identical() {
    let (seq_out, seq_rounds) = run_mis(200, 3, 4, 1);
    let (par_out, par_rounds) = run_mis(200, 3, 4, 4);
    assert_eq!(seq_out, par_out);
    assert_eq!(seq_rounds, par_rounds);
}

#[test]
fn different_seeds_still_valid() {
    let (a, _) = run_mis(64, 1, 2, 1);
    let (b, _) = run_mis(64, 9, 10, 1);
    // both valid (asserted inside); typically different sets
    if a == b {
        // astronomically unlikely but not impossible on tiny graphs; the
        // meaningful assertion is validity, already checked.
        eprintln!("note: different seeds produced identical MIS");
    }
}

#[test]
fn mst_deterministic_across_runs() {
    let g = gen::gnp(48, 0.15, 5);
    let wg = gen::with_random_weights(&g, 500, 6);
    let run = || {
        let mut eng = Engine::new(NetConfig::new(48, 7));
        let shared = SharedRandomness::new(8);
        algo::mst(&mut eng, &shared, &wg).unwrap().edges
    };
    assert_eq!(run(), run());
}
