//! Failure injection: the model's drop semantics under squeezed capacity,
//! and strict-mode enforcement.

use ncc::baselines::gossip_all;
use ncc::model::{Capacity, Ctx, Engine, Envelope, NetConfig, NodeProgram};

/// A protocol that ignores the receive cap: everyone floods node 0.
struct HotSpot;
impl NodeProgram for HotSpot {
    type State = u64;
    type Payload = u64;
    fn init(&self, _st: &mut u64, ctx: &mut Ctx<'_, u64>) {
        if ctx.id != 0 {
            ctx.send(0, ctx.id as u64);
        }
    }
    fn round(&self, st: &mut u64, inbox: &[Envelope<u64>], _ctx: &mut Ctx<'_, u64>) {
        *st += inbox.len() as u64;
    }
}

#[test]
fn squeezed_receive_cap_drops_and_counts() {
    // a hot-spot flood against a tiny receive cap: the network must drop
    // the excess, deliver an arbitrary subset, and count every loss
    let n = 256;
    let cfg = NetConfig::new(n, 1)
        .with_capacity(Capacity::squeezed(64, 4))
        .permissive();
    let mut eng = Engine::new(cfg);
    let mut states = vec![0u64; n];
    let stats = eng.execute(&HotSpot, &mut states).unwrap();
    assert_eq!(stats.dropped, (n - 1 - 4) as u64, "squeezed cap must drop");
    assert_eq!(states[0], 4, "exactly recv-cap messages delivered");
    assert_eq!(
        stats.delivered + stats.dropped,
        stats.sent,
        "every sent message is either delivered or dropped"
    );
}

#[test]
fn strict_mode_flags_oversend_in_algorithms() {
    // under an absurdly small send cap, the dissemination protocol
    // (which sizes its batches from the configured cap) still works —
    // capacity awareness is part of protocol design
    let n = 128;
    let cfg = NetConfig::new(n, 2).with_capacity(Capacity::squeezed(2, 2));
    let mut eng = Engine::new(cfg);
    let stats = gossip_all(&mut eng).unwrap();
    // with cap 2 the rotation takes ⌈(n−1)/2⌉ ≈ 64 rounds
    assert!(stats.rounds >= 60, "rounds {}", stats.rounds);
    assert!(stats.clean());
}

#[test]
fn deterministic_drop_selection() {
    let run = |seed: u64| {
        let cfg = NetConfig::new(64, seed)
            .with_capacity(Capacity::squeezed(64, 3))
            .permissive();
        let mut eng = Engine::new(cfg);
        gossip_all(&mut eng).unwrap()
    };
    assert_eq!(run(5), run(5));
    let a = run(5);
    let b = run(6);
    assert_eq!(a.sent, b.sent);
    // drop *choices* differ by seed but totals are schedule-determined here
    assert_eq!(a.dropped, b.dropped);
}

#[test]
fn unbounded_capacity_never_drops() {
    let cfg = NetConfig::new(128, 3).with_capacity(Capacity::unbounded());
    let mut eng = Engine::new(cfg);
    let stats = gossip_all(&mut eng).unwrap();
    assert_eq!(stats.dropped, 0);
    // with no cap the gossip batch is sized by `usize::MAX`… the protocol
    // still derives its schedule from the configured cap, so it simply
    // finishes in very few rounds
    assert!(stats.rounds <= 3, "rounds {}", stats.rounds);
}
