//! Cross-crate integration: the full paper pipeline on one engine.
//!
//! seed broadcast → orientation → broadcast trees → MST + BFS + MIS +
//! matching + coloring, every output certified, every round metered, zero
//! drops — the way a downstream user would drive the library.

use ncc::butterfly::broadcast_seed;
use ncc::core as algo;
use ncc::graph::{analysis, check, gen};
use ncc::hashing::SharedRandomness;
use ncc::model::{Engine, NetConfig};

fn pipeline(n: usize, a: usize, seed: u64) {
    let g = gen::forest_union(n, a, seed);
    let wg = gen::with_random_weights(&g, (n * n) as u64, seed + 1);

    let mut eng = Engine::new(NetConfig::new(n, seed + 2));

    // in-model shared-randomness agreement
    let k = SharedRandomness::k_for(n);
    let bits = SharedRandomness::bits_required(n, 16, k);
    let (shared, seed_stats) = broadcast_seed(&mut eng, seed ^ 0xE2E, bits).unwrap();
    assert!(seed_stats.rounds > 0);

    // MST (§3)
    let mst = algo::mst(&mut eng, &shared, &wg).unwrap();
    check::check_mst(&wg, &mst.edges).unwrap();

    // orientation + broadcast trees (§4, §5 preamble)
    let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
    let (alo, ahi) = analysis::arboricity_bounds(&g);
    check::check_orientation(&g, &bt.orientation.directed_edges(), 4 * ahi.max(1)).unwrap();
    assert!(
        bt.orientation.max_outdegree() <= 4 * alo.max(1),
        "outdegree {} vs 4a = {}",
        bt.orientation.max_outdegree(),
        4 * alo.max(1)
    );

    // BFS (§5.1)
    let bfs = algo::bfs(&mut eng, &shared, &bt, &g, 0).unwrap();
    check::check_bfs(&g, 0, &bfs.dist, &bfs.parent).unwrap();

    // MIS (§5.2)
    let mis = algo::mis(&mut eng, &shared, &bt, &g).unwrap();
    check::check_mis(&g, &mis.in_mis).unwrap();

    // maximal matching (§5.3)
    let mm = algo::maximal_matching(&mut eng, &shared, &bt, &g).unwrap();
    check::check_matching(&g, &mm.mate).unwrap();

    // O(a)-coloring (§5.4)
    let col = algo::coloring(&mut eng, &shared, &bt.orientation, &g).unwrap();
    check::check_coloring(&g, &col.colors, col.palette).unwrap();

    // model compliance across the whole engine lifetime (Lemma 4.11)
    assert!(eng.total.clean(), "drops or cap violations in the pipeline");
    let logn = (n as f64).log2();
    assert!(
        (eng.total.peak_load() as f64) <= 8.0 * logn,
        "peak load {} exceeds 8·log n",
        eng.total.peak_load()
    );
}

#[test]
fn full_pipeline_small() {
    pipeline(48, 2, 11);
}

#[test]
fn full_pipeline_medium() {
    pipeline(96, 3, 22);
}

#[test]
fn full_pipeline_nonpow2() {
    // n straddling a power of two exercises the proxy-column paths
    pipeline(70, 2, 33);
}

#[test]
fn pipeline_on_star() {
    // the capacity adversary end to end
    let n = 64;
    let g = gen::star(n);
    let mut eng = Engine::new(NetConfig::new(n, 5));
    let shared = SharedRandomness::new(6);
    let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
    let r = algo::mis(&mut eng, &shared, &bt, &g).unwrap();
    check::check_mis(&g, &r.in_mis).unwrap();
    let c = algo::coloring(&mut eng, &shared, &bt.orientation, &g).unwrap();
    check::check_coloring(&g, &c.colors, c.palette).unwrap();
    assert!(c.palette <= 10, "star must color with O(a) = O(1) palette");
    assert!(eng.total.clean());
}
