//! # ncc — Distributed Computation in Node-Capacitated Networks
//!
//! Facade crate re-exporting the full reproduction of Augustine et al.,
//! *Distributed Computation in Node-Capacitated Networks* (SPAA 2019):
//!
//! * [`model`] — the Node-Capacitated Clique round engine (the substrate)
//! * [`hashing`] — k-wise independent hashing, sketches, shared randomness
//! * [`graph`] — input graphs, generators, arboricity, checkers
//! * [`butterfly`] — butterfly emulation + communication primitives (§2.2)
//! * [`core`] — MST, O(a)-orientation, BFS, MIS, matching, coloring (§3–§5)
//! * [`baselines`] — sequential references and naive-NCC baselines
//! * [`kmachine`] — Appendix A conversion to the k-machine model
//! * [`runner`] — the unified scenario API: serializable [`runner::ScenarioSpec`],
//!   the [`runner::Algorithm`] registry, typed JSON [`runner::RunRecord`]s
//! * [`serve`] — the resident scenario coordinator: spec requests over
//!   stdio/TCP, content-addressed build cache, bounded worker pool
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use ncc_baselines as baselines;
pub use ncc_butterfly as butterfly;
pub use ncc_core as core;
pub use ncc_graph as graph;
pub use ncc_hashing as hashing;
pub use ncc_kmachine as kmachine;
pub use ncc_model as model;
pub use ncc_runner as runner;
pub use ncc_serve as serve;
