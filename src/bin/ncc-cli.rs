//! `ncc-cli` — command-line driver for the Node-Capacitated Clique stack.
//!
//! ```text
//! ncc-cli gen <family> --n <N> [--param <x>] [--seed <s>] [--out <file>]
//! ncc-cli run <algo> (--graph <file> | --family <f> --n <N> [--param <x>])
//!               [--seed <s>] [--weights <W>] [--src <v>] [--threads <t>]
//!               [--model <m>] [--edge-cap <c>] [--machines <k>]
//!               [--link-cap <c>] [--local-cap <c>] [--json <file>]
//! ncc-cli suite [--out <file>] [--threads <t>] [--model <m>]
//!               [--filter <algo-substring>] [--family <scenario-substring>]
//! ncc-cli explain <algo> [--family <f> --n <N> --param <x> --seed <s>]
//! ncc-cli list
//! ncc-cli info --n <N>
//! ```
//!
//! Every algorithm dispatches through the `ncc-runner` registry: `run`
//! builds a [`ScenarioSpec`] from the flags, looks the algorithm up by
//! name, and prints the typed [`RunRecord`] (optionally as JSON). `--model`
//! selects the execution model (`ncc` default, `cc`/`congested-clique`,
//! `kmachine`, `hybrid`). `suite` runs the whole registry over the
//! standard scenario grid — which includes a model dimension — and writes
//! `BENCH_suite.json`, the deterministic snapshot the CI bench gate diffs;
//! `suite --model <m>` re-runs the full family × n sweep under one model
//! instead. `explain` prints the scheduler's packing plan for a
//! DAG-declared algorithm — which primitive lanes share which mux stage,
//! and how that sits against the per-node lane budget.

use std::collections::HashMap;

use ncc::graph::{analysis, io};
use ncc::model::{Capacity, ModelSpec, NetConfig};
use ncc::runner::{
    algorithms, explain_text, filter_grid, find_algorithm, run_suite_filtered, standard_grid,
    standard_grid_for_model, suggest_algorithm, FamilySpec, RunRecord, Scenario, ScenarioSpec,
};
use ncc::serve::{serve_stdio, ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit(None);
    }
    let cmd = args[0].as_str();
    let (positional, flags) = parse_args(&args[1..]);

    match cmd {
        "gen" => cmd_gen(&positional, &flags),
        "run" => cmd_run(&positional, &flags),
        "suite" => cmd_suite(&flags),
        "explain" => cmd_explain(&positional, &flags),
        "serve" => cmd_serve(&flags),
        "list" => cmd_list(),
        "info" => cmd_info(&flags),
        "help" | "-h" | "--help" => usage_and_exit(None),
        other => usage_and_exit(Some(&format!("unknown command '{other}'"))),
    }
}

/// Splits raw arguments into positionals and `--flag [value]` pairs.
///
/// A flag followed by another `--`-prefixed token (or by nothing) is
/// *valueless* and maps to the empty string — `--json --threads 4` parses
/// as `json=""`, `threads="4"`, never `json="--threads"`.
fn parse_args(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    flags.insert(name.to_string(), String::new());
                    i += 1;
                }
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn usage_and_exit(err: Option<&str>) -> ! {
    if let Some(e) = err {
        eprintln!("error: {e}\n");
    }
    let algo_names: Vec<&str> = algorithms().iter().map(|a| a.name()).collect();
    eprintln!(
        "ncc-cli — Node-Capacitated Clique driver

USAGE:
  ncc-cli gen <family> --n <N> [--param <x>] [--seed <s>] [--out <file>]
  ncc-cli run <algo> (--graph <file> | --family <f> --n <N> [--param <x>])
                [--seed <s>] [--weights <W>] [--src <v>] [--threads <t>]
                [--model <m>] [--edge-cap <c>] [--machines <k>]
                [--link-cap <c>] [--local-cap <c>] [--json <file>]
  ncc-cli suite [--out <file>] [--threads <t>] [--model <m>]
                [--filter <algo-substring>] [--family <scenario-substring>]
  ncc-cli explain <algo> [--family <f> --n <N> --param <x> --seed <s>]
  ncc-cli serve [--listen <addr>] [--workers <N>] [--engine-threads <t>]
                [--cache <N>]
  ncc-cli list
  ncc-cli info --n <N>

FAMILIES   path cycle star complete grid tgrid tree forests gnp gnm ba geometric
           rmat hyperbolic
MODELS     ncc (default) · cc|congested-clique [--edge-cap <msgs>]
           · kmachine [--machines <k>] [--link-cap <msgs>]
           · hybrid [--local-cap <msgs>]
ALGORITHMS {}

EXAMPLES
  ncc-cli gen gnp --n 256 --param 0.05 --seed 7 --out g.txt
  ncc-cli run mst --graph g.txt --weights 1000
  ncc-cli run mis --family ba --n 256 --param 3
  ncc-cli run bfs --family grid --n 256 --src 0 --json bfs.json
  ncc-cli run bfs --family gnp --n 256 --model kmachine --machines 16
  ncc-cli run gossip --family gnp --n 256 --model cc
  ncc-cli suite --out BENCH_suite.json
  ncc-cli explain apsp --family gnp --n 128
  ncc-cli serve --listen 127.0.0.1:7070 --workers 8",
        algo_names.join(" ")
    );
    std::process::exit(if err.is_some() { 2 } else { 0 });
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad --{key}")))
        .unwrap_or(default)
}

fn get_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    flags
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad --{key}")))
        .unwrap_or(default)
}

fn get_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> f64 {
    flags
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad --{key}")))
        .unwrap_or(default)
}

/// Maps the CLI family vocabulary onto a [`FamilySpec`].
fn family_spec(family: &str, n: usize, flags: &HashMap<String, String>) -> (FamilySpec, usize) {
    let p = get_f64(flags, "param", f64::NAN);
    let param_usize = if p.is_nan() { 0 } else { p as usize };
    match family {
        "path" => (FamilySpec::Path, n),
        "cycle" => (FamilySpec::Cycle, n),
        "star" => (FamilySpec::Star, n),
        "complete" => (FamilySpec::Complete, n),
        "grid" | "tgrid" => {
            let side = (n as f64).sqrt().round().max(1.0) as usize;
            let fam = if family == "grid" {
                FamilySpec::Grid {
                    rows: side,
                    cols: side,
                }
            } else {
                FamilySpec::TGrid {
                    rows: side,
                    cols: side,
                }
            };
            (fam, side * side)
        }
        "tree" => (FamilySpec::Tree, n),
        "forests" => (
            FamilySpec::Forests {
                k: param_usize.max(1),
            },
            n,
        ),
        "gnp" => (
            FamilySpec::Gnp {
                p: if p.is_nan() { 0.05 } else { p },
            },
            n,
        ),
        "gnm" => (
            FamilySpec::Gnm {
                m: param_usize.max(n),
            },
            n,
        ),
        "ba" => (
            FamilySpec::Ba {
                m: param_usize.max(1),
            },
            n,
        ),
        "geometric" => (
            FamilySpec::Geometric {
                radius: if p.is_nan() { 0.15 } else { p },
            },
            n,
        ),
        // --param is the edge factor (sampled edges per node); default 8
        "rmat" => (
            FamilySpec::Rmat {
                edge_factor: if p.is_nan() { 8 } else { param_usize.max(1) },
            },
            n,
        ),
        // --param is alpha (power-law exponent 2α+1); disk offset c fixed 0
        "hyperbolic" => (
            FamilySpec::Hyperbolic {
                alpha: if p.is_nan() { 0.75 } else { p },
                c: 0.0,
            },
            n,
        ),
        other => {
            usage_and_exit(Some(&format!("unknown family '{other}'")));
        }
    }
}

/// Maps the `--model` vocabulary (plus its parameter flags) onto a
/// [`ModelSpec`]. `None` when no `--model` flag was given (NCC default).
fn model_from_flags(n: usize, flags: &HashMap<String, String>) -> Option<ModelSpec> {
    let name = flags.get("model")?;
    Some(match name.as_str() {
        "" | "ncc" => ModelSpec::Ncc,
        "cc" | "clique" | "congested-clique" => ModelSpec::CongestedClique {
            edge_cap: get_usize(flags, "edge-cap", Capacity::default_for(n).send),
        },
        "kmachine" | "k-machine" => ModelSpec::KMachine {
            k: get_usize(flags, "machines", 8).max(1),
            link_capacity: get_u64(flags, "link-cap", 1).max(1),
        },
        "hybrid" => ModelSpec::HybridLocal {
            local_edge_cap: get_usize(flags, "local-cap", 8).max(1),
        },
        other => usage_and_exit(Some(&format!("unknown model '{other}'"))),
    })
}

/// Builds the scenario spec described by the `run` flags (graph family
/// path; `--graph` files go through [`Scenario::from_graph`] instead).
fn spec_from_flags(family: &str, flags: &HashMap<String, String>) -> ScenarioSpec {
    let n = get_usize(flags, "n", 64);
    let seed = get_u64(flags, "seed", 1);
    let (fam, n) = family_spec(family, n, flags);
    let mut spec = ScenarioSpec::new(fam, n, seed)
        .with_source(get_usize(flags, "src", 0) as u32)
        .with_threads(get_usize(flags, "threads", 1));
    if let Some(w) = flags.get("weights") {
        spec = spec.with_weight_max(w.parse().unwrap_or_else(|_| panic!("bad --weights")));
    }
    if let Some(model) = model_from_flags(n, flags) {
        spec = spec.with_model(model);
    }
    spec
}

fn cmd_gen(positional: &[String], flags: &HashMap<String, String>) {
    let family = positional.first().map(String::as_str).unwrap_or_else(|| {
        usage_and_exit(Some("gen needs a family"));
    });
    let spec = spec_from_flags(family, flags);
    let g = spec.build_graph().unwrap_or_else(|e| {
        usage_and_exit(Some(&e.to_string()));
    });
    let text = io::write_graph(&g);
    match flags.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, text).expect("write graph file");
            eprintln!("wrote {} ({} nodes, {} edges)", path, g.n(), g.m());
        }
        _ => print!("{text}"),
    }
}

/// "unknown algorithm" error text, with a "did you mean" hint when a
/// registry name is a close match.
fn unknown_algorithm(name: &str) -> String {
    match suggest_algorithm(name) {
        Some(s) => format!("unknown algorithm '{name}' — did you mean '{s}'? (try `ncc-cli list`)"),
        None => format!("unknown algorithm '{name}' (try `ncc-cli list`)"),
    }
}

fn cmd_run(positional: &[String], flags: &HashMap<String, String>) {
    let algo_name = positional.first().map(String::as_str).unwrap_or_else(|| {
        usage_and_exit(Some("run needs an algorithm"));
    });
    let Some(algo) = find_algorithm(algo_name) else {
        usage_and_exit(Some(&unknown_algorithm(algo_name)));
    };

    // Scenario: either an on-disk graph (echoed as family `provided`) or a
    // generated family.
    let scn = if let Some(path) = flags.get("graph") {
        let text = std::fs::read_to_string(path).expect("read graph file");
        let g = io::read_graph(&text).expect("parse graph file");
        let mut spec = ScenarioSpec::new(FamilySpec::Provided, g.n(), get_u64(flags, "seed", 1))
            .with_source(get_usize(flags, "src", 0) as u32)
            .with_threads(get_usize(flags, "threads", 1));
        if let Some(w) = flags.get("weights") {
            spec = spec.with_weight_max(w.parse().unwrap_or_else(|_| panic!("bad --weights")));
        }
        if let Some(model) = model_from_flags(g.n(), flags) {
            spec = spec.with_model(model);
        }
        Scenario::from_graph(spec, g)
    } else if let Some(f) = flags.get("family") {
        spec_from_flags(f, flags).build().unwrap_or_else(|e| {
            usage_and_exit(Some(&e.to_string()));
        })
    } else {
        usage_and_exit(Some("run needs --graph <file> or --family <name>"));
    };

    let (alo, ahi) = analysis::arboricity_bounds(&scn.graph);
    eprintln!(
        "graph: n = {}, m = {}, Δ = {}, arboricity ∈ [{alo},{ahi}]",
        scn.graph.n(),
        scn.graph.m(),
        scn.graph.max_degree()
    );

    let mut eng = scn.engine();
    let record = algo
        .run(&mut eng, &scn)
        .unwrap_or_else(|e| panic!("{algo_name} failed: {e}"));
    print_record(&record, eng.config().capacity.send);

    if let Some(path) = flags.get("json") {
        let path = if path.is_empty() {
            format!("{algo_name}.json")
        } else {
            path.clone()
        };
        std::fs::write(&path, record.to_json_pretty() + "\n").expect("write JSON record");
        eprintln!("wrote {path}");
    }
    if record.verdict == ncc::runner::Verdict::Failed {
        std::process::exit(1);
    }
}

fn print_record(r: &RunRecord, send_cap: usize) {
    let verdict = match r.verdict {
        ncc::runner::Verdict::Verified => "verified ✓",
        ncc::runner::Verdict::Unchecked => "completed (no checker)",
        ncc::runner::Verdict::Failed => "VERIFICATION FAILED ✗",
    };
    println!("{}: {} — {verdict}", r.algorithm, r.summary);
    let cap_str = if send_cap == usize::MAX {
        "unbounded".to_string()
    } else {
        send_cap.to_string()
    };
    println!(
        "totals: {} rounds, {} msgs, peak load {}/{cap_str} per node-round, {} drops, {} truncated",
        r.rounds, r.sent, r.max_load, r.dropped, r.truncated
    );
    // Only the counters the active model actually produces: km charge for
    // the k-machine conversion, per-edge loads for the pairwise-budget
    // models.
    match r.scenario.model {
        ModelSpec::Ncc => {}
        ModelSpec::KMachine { .. } => {
            println!(
                "model {}: {} charged k-machine rounds",
                r.scenario.model.name(),
                r.km_rounds
            );
        }
        ModelSpec::CongestedClique { .. } | ModelSpec::HybridLocal { .. } => {
            println!(
                "model {}: peak edge load {}",
                r.scenario.model.name(),
                r.report.total.max_edge_load
            );
        }
    }
    for (label, s) in &r.report.stages {
        println!(
            "  stage {label:<24} {:>6} rounds {:>9} msgs",
            s.rounds, s.sent
        );
    }
}

fn cmd_suite(flags: &HashMap<String, String>) {
    let threads = get_usize(flags, "threads", 1);
    let partial = flags.get("filter").is_some_and(|f| !f.is_empty())
        || flags.get("family").is_some_and(|f| !f.is_empty());
    let out_path = match flags.get("out") {
        Some(p) if !p.is_empty() => p.clone(),
        // a filtered run is not a full snapshot: never overwrite the
        // CI-gated default file with a partial record set
        _ if partial => "BENCH_suite.partial.json".to_string(),
        _ => "BENCH_suite.json".to_string(),
    };
    // Default: the standard grid, which already carries a model dimension.
    // `--model <m>` instead re-runs the whole family × n sweep under one
    // model, resolving defaulted model parameters (e.g. the
    // congested-clique edge cap) against each cell's own n.
    let grid: Vec<ScenarioSpec> = if flags.contains_key("model") {
        standard_grid_for_model(ModelSpec::Ncc)
            .into_iter()
            .map(|s| {
                let model = model_from_flags(s.n, flags).expect("--model present");
                s.with_model(model)
            })
            .collect()
    } else {
        standard_grid()
    };
    // `--family <substring>` restricts the scenario axis, `--filter
    // <substring>` the algorithm axis — the fast-iteration path when
    // tuning one algorithm without regenerating the full snapshot.
    let family_filter = flags
        .get("family")
        .map(String::as_str)
        .filter(|f| !f.is_empty());
    let algo_filter = flags
        .get("filter")
        .map(String::as_str)
        .filter(|f| !f.is_empty());
    let grid = filter_grid(grid, family_filter);
    if grid.is_empty() {
        usage_and_exit(Some(&format!(
            "--family '{}' matches no scenario",
            family_filter.unwrap_or_default()
        )));
    }
    if partial && !flags.contains_key("out") {
        eprintln!(
            "note: partial suite (--filter/--family) — not a full snapshot; writing {out_path}"
        );
    }
    eprintln!(
        "suite: {} algorithms × {} scenarios",
        algo_filter.map_or(algorithms().len(), |f| {
            algorithms()
                .iter()
                .filter(|a| a.name().contains(&f.to_lowercase()))
                .count()
        }),
        grid.len()
    );
    let out = run_suite_filtered(&grid, threads, algo_filter)
        .unwrap_or_else(|e| panic!("suite failed: {e}"));
    for rec in &out.records {
        println!(
            "{:<24} {:<22} {:>7} rounds  {:>4} load  {:>3} drops  {}",
            rec.algorithm,
            rec.scenario.label(),
            rec.rounds,
            rec.max_load,
            rec.dropped,
            if rec.verdict.ok() { "ok" } else { "FAIL" }
        );
    }
    let failed = out.records.iter().filter(|r| !r.verdict.ok()).count();
    out.write(&out_path).expect("write suite JSON");
    eprintln!("wrote {out_path} ({} records)", out.records.len());
    if failed > 0 {
        eprintln!("{failed} record(s) FAILED verification");
        std::process::exit(1);
    }
}

/// `explain <algo>` — re-run the algorithm's declared DAG through the
/// scheduler and print the packing plan instead of the results.
fn cmd_explain(positional: &[String], flags: &HashMap<String, String>) {
    let algo_name = positional.first().map(String::as_str).unwrap_or_else(|| {
        usage_and_exit(Some("explain needs an algorithm"));
    });
    let Some(algo) = find_algorithm(algo_name) else {
        usage_and_exit(Some(&unknown_algorithm(algo_name)));
    };
    let family = flags.get("family").map(String::as_str).unwrap_or("gnp");
    let gen_start = std::time::Instant::now();
    let scn = spec_from_flags(family, flags).build().unwrap_or_else(|e| {
        usage_and_exit(Some(&e.to_string()));
    });
    let gen_ms = gen_start.elapsed().as_secs_f64() * 1000.0;
    match explain_plan(algo, &scn) {
        Some(text) => print!("{text}"),
        None => {
            println!("{algo_name} is not declared as a protocol DAG — no packing plan to show");
        }
    }
    print!("{}", activity_note(algo, &scn, gen_ms));
}

/// One-line activity-sparsity summary for `explain`: how wide the widest
/// round was and what fraction of the naive `rounds × n` node-rounds the
/// run actually stepped (the engine's per-round cost is O(active), so
/// this ratio is the real step-phase work).
fn activity_note(algo: &'static dyn ncc::runner::Algorithm, scn: &Scenario, gen_ms: f64) -> String {
    let mut eng = scn.engine();
    match algo.run(&mut eng, scn) {
        Ok(rec) => {
            let (peak, sum) = (
                rec.metric("peak_active").unwrap_or(0),
                rec.metric("sum_active").unwrap_or(0),
            );
            let naive = rec.rounds.saturating_mul(scn.spec.n as u64).max(1);
            let footprint = eng.resident_bytes();
            format!(
                "activity: peak_active {} / n {} · sum_active {} ({:.1}% of rounds × n)\n\
                 resources: gen {:.2} ms · resident {:.1} B/node ({} B engine state)\n",
                peak,
                scn.spec.n,
                sum,
                100.0 * sum as f64 / naive as f64,
                gen_ms,
                footprint.per_node(scn.spec.n),
                footprint.total()
            )
        }
        Err(e) => format!("activity: run failed ({e})\n"),
    }
}

/// The `explain` body, separated from process concerns so tests can call it.
fn explain_plan(algo: &'static dyn ncc::runner::Algorithm, scn: &Scenario) -> Option<String> {
    let mut eng = scn.engine();
    explain_text(algo, &mut eng, scn).unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()))
}

/// `serve` — run the resident scenario coordinator (see `docs/serving.md`).
/// Default is the stdio front; `--listen <addr>` binds a local TCP socket
/// and runs until a `Shutdown` request lands.
fn cmd_serve(flags: &HashMap<String, String>) {
    let mut cfg = ServeConfig::default();
    if let Some(w) = flags.get("workers") {
        cfg = cfg.with_workers(w.parse().unwrap_or_else(|_| panic!("bad --workers")));
    }
    if let Some(t) = flags.get("engine-threads") {
        cfg = cfg.with_engine_threads(t.parse().unwrap_or_else(|_| panic!("bad --engine-threads")));
    }
    if let Some(c) = flags.get("cache") {
        cfg = cfg.with_cache_capacity(c.parse().unwrap_or_else(|_| panic!("bad --cache")));
    }
    match flags.get("listen") {
        Some(addr) if !addr.is_empty() => {
            let server = Server::spawn(cfg, addr).unwrap_or_else(|e| {
                usage_and_exit(Some(&format!("cannot bind {addr}: {e}")));
            });
            eprintln!(
                "serving on {} ({} workers, {} engine threads, cache {})",
                server.addr(),
                cfg.workers,
                cfg.engine_threads,
                cfg.cache_capacity
            );
            while !server.coordinator().is_shutdown() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            server.shutdown_and_join();
        }
        Some(_) => usage_and_exit(Some("--listen needs an address (e.g. 127.0.0.1:7070)")),
        None => {
            if let Err(e) = serve_stdio(cfg) {
                usage_and_exit(Some(&e.to_string()));
            }
        }
    }
}

fn cmd_list() {
    println!("registered algorithms:");
    for a in algorithms() {
        println!("  {:<22} {}", a.name(), a.description());
    }
}

fn cmd_info(flags: &HashMap<String, String>) {
    let n = get_usize(flags, "n", 64);
    let cfg = NetConfig::new(n, 0);
    let c = cfg.capacity;
    println!("Node-Capacitated Clique, n = {n}:");
    println!(
        "  send/recv cap : {} messages per node per round (κ=8 · ⌈log₂ n⌉)",
        c.send
    );
    println!(
        "  payload budget: {} bits per message (β=24 · ⌈log₂ n⌉, floor 128)",
        c.payload_bits
    );
    println!(
        "  butterfly     : d = {} ({} columns)",
        ncc::model::ilog2_floor(n.max(2)),
        1usize << ncc::model::ilog2_floor(n.max(2))
    );
    println!(
        "  network budget: ≈ {} messages per round network-wide",
        n.saturating_mul(c.send)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_flag_value_pairs() {
        let (pos, flags) = parse_args(&strings(&["mst", "--n", "64", "--seed", "9"]));
        assert_eq!(pos, vec!["mst"]);
        assert_eq!(flags.get("n").map(String::as_str), Some("64"));
        assert_eq!(flags.get("seed").map(String::as_str), Some("9"));
    }

    #[test]
    fn parse_rejects_flag_as_swallowed_value() {
        // the old parser read this as json="--threads" and dropped --threads
        let (_, flags) = parse_args(&strings(&["--json", "--threads", "4"]));
        assert_eq!(flags.get("json").map(String::as_str), Some(""));
        assert_eq!(flags.get("threads").map(String::as_str), Some("4"));
    }

    #[test]
    fn parse_valueless_trailing_flag() {
        let (pos, flags) = parse_args(&strings(&["run", "--json"]));
        assert_eq!(pos, vec!["run"]);
        assert_eq!(flags.get("json").map(String::as_str), Some(""));
    }

    #[test]
    fn family_spec_covers_cli_vocabulary() {
        let flags = HashMap::new();
        for fam in [
            "path",
            "cycle",
            "star",
            "complete",
            "grid",
            "tgrid",
            "tree",
            "forests",
            "gnp",
            "gnm",
            "ba",
            "geometric",
            "rmat",
            "hyperbolic",
        ] {
            let (spec, n) = family_spec(fam, 64, &flags);
            assert!(n >= 1);
            let spec = ScenarioSpec::new(spec, n, 1);
            assert!(spec.build().is_ok(), "family {fam} must build");
        }
    }

    #[test]
    fn spec_from_flags_threads_and_weights() {
        let mut flags = HashMap::new();
        flags.insert("n".to_string(), "32".to_string());
        flags.insert("threads".to_string(), "4".to_string());
        flags.insert("weights".to_string(), "100".to_string());
        let spec = spec_from_flags("gnp", &flags);
        assert_eq!(spec.n, 32);
        assert_eq!(spec.threads, 4);
        assert_eq!(spec.weight_max, 100);
        assert_eq!(spec.model, ModelSpec::Ncc);
    }

    #[test]
    fn model_flags_cover_the_vocabulary() {
        let with = |pairs: &[(&str, &str)]| -> HashMap<String, String> {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        assert_eq!(model_from_flags(64, &with(&[])), None);
        assert_eq!(
            model_from_flags(64, &with(&[("model", "ncc")])),
            Some(ModelSpec::Ncc)
        );
        assert_eq!(
            model_from_flags(64, &with(&[("model", "cc"), ("edge-cap", "5")])),
            Some(ModelSpec::CongestedClique { edge_cap: 5 })
        );
        // default edge cap tracks the NCC per-node constant at that n
        assert_eq!(
            model_from_flags(64, &with(&[("model", "congested-clique")])),
            Some(ModelSpec::CongestedClique {
                edge_cap: Capacity::default_for(64).send
            })
        );
        assert_eq!(
            model_from_flags(
                64,
                &with(&[("model", "kmachine"), ("machines", "16"), ("link-cap", "2")])
            ),
            Some(ModelSpec::KMachine {
                k: 16,
                link_capacity: 2
            })
        );
        assert_eq!(
            model_from_flags(64, &with(&[("model", "hybrid"), ("local-cap", "3")])),
            Some(ModelSpec::HybridLocal { local_edge_cap: 3 })
        );
    }

    #[test]
    fn suite_filters_restrict_grid_and_registry() {
        // --family restricts the scenario axis through filter_grid
        let grid = standard_grid();
        let only_gnp = filter_grid(grid.clone(), Some("gnp"));
        assert!(!only_gnp.is_empty());
        assert!(only_gnp.iter().all(|s| s.label().contains("gnp")));
        // --filter restricts the algorithm axis through run_suite_filtered;
        // a tiny grid keeps the test fast
        let small = vec![ScenarioSpec::new(FamilySpec::Path, 8, 1)];
        let out = run_suite_filtered(&small, 1, Some("gossip")).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].algorithm, "gossip");
        // the CLI treats an empty flag value as "no filter"
        let mut flags = HashMap::new();
        flags.insert("filter".to_string(), String::new());
        let algo_filter = flags
            .get("filter")
            .map(String::as_str)
            .filter(|f| !f.is_empty());
        assert_eq!(algo_filter, None);
    }

    #[test]
    fn explain_renders_the_packing_plan() {
        let mut flags = HashMap::new();
        flags.insert("n".to_string(), "32".to_string());
        flags.insert("seed".to_string(), "3".to_string());
        let scn = spec_from_flags("gnp", &flags).build().unwrap();
        // a DAG-declared algorithm gets a stage-by-stage plan with budget use
        let text =
            explain_plan(find_algorithm("apsp").unwrap(), &scn).expect("apsp is DAG-declared");
        assert!(text.contains("packing plan for `apsp`"));
        assert!(text.contains("lane budget"));
        assert!(text.contains("stage    1"));
        assert!(text.contains("spread"), "lane labels must be listed");
        assert!(text.contains("total:"));
        // a baseline has no DAG and therefore no plan
        assert!(explain_plan(find_algorithm("gossip").unwrap(), &scn).is_none());
    }

    #[test]
    fn spec_from_flags_applies_model() {
        let mut flags = HashMap::new();
        flags.insert("n".to_string(), "32".to_string());
        flags.insert("model".to_string(), "kmachine".to_string());
        let spec = spec_from_flags("gnp", &flags);
        assert_eq!(
            spec.model,
            ModelSpec::KMachine {
                k: 8,
                link_capacity: 1
            }
        );
        // cc switches the node capacity off in the same stroke
        flags.insert("model".to_string(), "cc".to_string());
        let spec = spec_from_flags("gnp", &flags);
        assert_eq!(spec.capacity, Capacity::unbounded());
    }
}
