//! `ncc-cli` — command-line driver for the Node-Capacitated Clique stack.
//!
//! ```text
//! ncc-cli gen <family> --n <N> [--param <x>] [--seed <s>] [--out <file>]
//! ncc-cli run <algo> (--graph <file> | --family <f> --n <N> [--param <x>])
//!               [--seed <s>] [--weights <W>] [--src <v>] [--threads <t>]
//! ncc-cli info --n <N>
//! ```
//!
//! Families: path cycle star complete grid tgrid tree forests gnp gnm ba
//! geometric. Algorithms: mst orientation bfs mis matching coloring
//! gossip broadcast.

use std::collections::HashMap;

use ncc::graph::{analysis, check, gen, io, Graph};
use ncc::hashing::SharedRandomness;
use ncc::model::{Engine, NetConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit(None);
    }
    let cmd = args[0].as_str();
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }

    match cmd {
        "gen" => cmd_gen(&positional, &flags),
        "run" => cmd_run(&positional, &flags),
        "info" => cmd_info(&flags),
        "help" | "-h" | "--help" => usage_and_exit(None),
        other => usage_and_exit(Some(&format!("unknown command '{other}'"))),
    }
}

fn usage_and_exit(err: Option<&str>) -> ! {
    if let Some(e) = err {
        eprintln!("error: {e}\n");
    }
    eprintln!(
        "ncc-cli — Node-Capacitated Clique driver

USAGE:
  ncc-cli gen <family> --n <N> [--param <x>] [--seed <s>] [--out <file>]
  ncc-cli run <algo> (--graph <file> | --family <f> --n <N> [--param <x>])
                [--seed <s>] [--weights <W>] [--src <v>] [--threads <t>]
  ncc-cli info --n <N>

FAMILIES   path cycle star complete grid tgrid tree forests gnp gnm ba geometric
ALGORITHMS mst orientation bfs mis matching coloring gossip broadcast

EXAMPLES
  ncc-cli gen gnp --n 256 --param 0.05 --seed 7 --out g.txt
  ncc-cli run mst --graph g.txt --weights 1000
  ncc-cli run mis --family ba --n 256 --param 3
  ncc-cli run bfs --family grid --n 256 --src 0"
    );
    std::process::exit(if err.is_some() { 2 } else { 0 });
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad --{key}")))
        .unwrap_or(default)
}

fn get_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    flags
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad --{key}")))
        .unwrap_or(default)
}

fn get_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> f64 {
    flags
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad --{key}")))
        .unwrap_or(default)
}

fn build_family(family: &str, flags: &HashMap<String, String>) -> Graph {
    let n = get_usize(flags, "n", 64);
    let seed = get_u64(flags, "seed", 1);
    let p = get_f64(flags, "param", f64::NAN);
    let param_usize = if p.is_nan() { 0 } else { p as usize };
    match family {
        "path" => gen::path(n),
        "cycle" => gen::cycle(n),
        "star" => gen::star(n),
        "complete" => gen::complete(n),
        "grid" => {
            let side = (n as f64).sqrt().round() as usize;
            gen::grid(side, side.max(1))
        }
        "tgrid" => {
            let side = (n as f64).sqrt().round() as usize;
            gen::triangulated_grid(side, side.max(1))
        }
        "tree" => gen::random_tree(n, seed),
        "forests" => gen::forest_union(n, param_usize.max(1), seed),
        "gnp" => gen::gnp(n, if p.is_nan() { 0.05 } else { p }, seed),
        "gnm" => gen::gnm(n, param_usize.max(n), seed),
        "ba" => gen::barabasi_albert(n, param_usize.max(1), seed),
        "geometric" => gen::random_geometric(n, if p.is_nan() { 0.15 } else { p }, seed),
        other => {
            usage_and_exit(Some(&format!("unknown family '{other}'")));
        }
    }
}

fn cmd_gen(positional: &[String], flags: &HashMap<String, String>) {
    let family = positional.first().map(String::as_str).unwrap_or_else(|| {
        usage_and_exit(Some("gen needs a family"));
    });
    let g = build_family(family, flags);
    let text = io::write_graph(&g);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, text).expect("write graph file");
            eprintln!("wrote {} ({} nodes, {} edges)", path, g.n(), g.m());
        }
        None => print!("{text}"),
    }
}

fn load_graph(flags: &HashMap<String, String>) -> Graph {
    if let Some(path) = flags.get("graph") {
        let text = std::fs::read_to_string(path).expect("read graph file");
        io::read_graph(&text).expect("parse graph file")
    } else if let Some(f) = flags.get("family") {
        build_family(f.clone().as_str(), flags)
    } else {
        usage_and_exit(Some("run needs --graph <file> or --family <name>"));
    }
}

fn cmd_run(positional: &[String], flags: &HashMap<String, String>) {
    let algo = positional.first().map(String::as_str).unwrap_or_else(|| {
        usage_and_exit(Some("run needs an algorithm"));
    });
    let g = load_graph(flags);
    let n = g.n();
    let seed = get_u64(flags, "seed", 1);
    let threads = get_usize(flags, "threads", 1);
    let (alo, ahi) = analysis::arboricity_bounds(&g);
    eprintln!(
        "graph: n = {n}, m = {}, Δ = {}, arboricity ∈ [{alo},{ahi}]",
        g.m(),
        g.max_degree()
    );

    let mut eng = Engine::new(NetConfig::new(n, seed).with_threads(threads));
    let shared = SharedRandomness::new(seed ^ 0xC11);

    match algo {
        "mst" => {
            let w = get_u64(flags, "weights", (n * n) as u64);
            let wg = gen::with_random_weights(&g, w.max(1), seed ^ 1);
            let r = ncc::core::mst(&mut eng, &shared, &wg).expect("mst");
            check::check_mst(&wg, &r.edges).expect("verification");
            println!(
                "MST: {} edges, weight {}, {} phases, {} rounds — verified ✓",
                r.edges.len(),
                wg.total_weight(&r.edges),
                r.phases,
                r.report.total.rounds
            );
        }
        "orientation" => {
            let r = ncc::core::orient(&mut eng, &shared, &g).expect("orientation");
            check::check_orientation(&g, &r.directed_edges(), 4 * ahi.max(1))
                .expect("verification");
            println!(
                "orientation: max outdegree {} (d* = {}), {} phases, {} rounds — verified ✓",
                r.max_outdegree(),
                r.d_star,
                r.phases,
                r.report.total.rounds
            );
        }
        "bfs" | "mis" | "matching" | "coloring" => {
            let (bt, setup) =
                ncc::core::build_broadcast_trees(&mut eng, &shared, &g).expect("setup");
            eprintln!("setup (orientation + trees): {} rounds", setup.total.rounds);
            match algo {
                "bfs" => {
                    let src = get_usize(flags, "src", 0) as u32;
                    let r = ncc::core::bfs(&mut eng, &shared, &bt, &g, src).expect("bfs");
                    check::check_bfs(&g, src, &r.dist, &r.parent).expect("verification");
                    let reached = r.dist.iter().filter(|&&d| d != u32::MAX).count();
                    println!(
                        "BFS from {src}: {reached}/{n} reached, {} phases, {} rounds — verified ✓",
                        r.phases, r.report.total.rounds
                    );
                }
                "mis" => {
                    let r = ncc::core::mis(&mut eng, &shared, &bt, &g).expect("mis");
                    check::check_mis(&g, &r.in_mis).expect("verification");
                    println!(
                        "MIS: {} nodes, {} phases, {} rounds — verified ✓",
                        r.in_mis.iter().filter(|&&b| b).count(),
                        r.phases,
                        r.report.total.rounds
                    );
                }
                "matching" => {
                    let r =
                        ncc::core::maximal_matching(&mut eng, &shared, &bt, &g).expect("matching");
                    check::check_matching(&g, &r.mate).expect("verification");
                    println!(
                        "matching: {} pairs, {} phases, {} rounds — verified ✓",
                        r.mate.iter().filter(|m| m.is_some()).count() / 2,
                        r.phases,
                        r.report.total.rounds
                    );
                }
                _ => {
                    let r = ncc::core::coloring(&mut eng, &shared, &bt.orientation, &g)
                        .expect("coloring");
                    check::check_coloring(&g, &r.colors, r.palette).expect("verification");
                    println!(
                        "coloring: {} colors (palette {}), {} rounds — verified ✓",
                        r.colors.iter().max().map_or(0, |c| c + 1),
                        r.palette,
                        r.report.total.rounds
                    );
                }
            }
        }
        "gossip" => {
            let stats = ncc::baselines::gossip_all(&mut eng).expect("gossip");
            println!("gossip: {} rounds, {} messages", stats.rounds, stats.sent);
        }
        "broadcast" => {
            let stats = ncc::baselines::broadcast_all(&mut eng, 42).expect("broadcast");
            println!(
                "broadcast: {} rounds, {} messages",
                stats.rounds, stats.sent
            );
        }
        other => usage_and_exit(Some(&format!("unknown algorithm '{other}'"))),
    }

    let t = eng.total;
    eprintln!(
        "totals: {} rounds, {} msgs, peak load {}/{} per node-round, {} drops",
        t.rounds,
        t.sent,
        t.peak_load(),
        eng.config().capacity.send,
        t.dropped
    );
}

fn cmd_info(flags: &HashMap<String, String>) {
    let n = get_usize(flags, "n", 64);
    let cfg = NetConfig::new(n, 0);
    let c = cfg.capacity;
    println!("Node-Capacitated Clique, n = {n}:");
    println!(
        "  send/recv cap : {} messages per node per round (κ=8 · ⌈log₂ n⌉)",
        c.send
    );
    println!(
        "  payload budget: {} bits per message (β=24 · ⌈log₂ n⌉, floor 128)",
        c.payload_bits
    );
    println!(
        "  butterfly     : d = {} ({} columns)",
        ncc::model::ilog2_floor(n.max(2)),
        1usize << ncc::model::ilog2_floor(n.max(2))
    );
    println!(
        "  network budget: ≈ {} messages per round network-wide",
        n * c.send
    );
}
