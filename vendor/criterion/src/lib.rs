//! Offline, API-compatible subset of [`criterion`](https://bheisler.github.io/criterion.rs/),
//! vendored so the workspace's benches build and run without network access.
//!
//! Provides `Criterion`, benchmark groups, `BenchmarkId`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! mean over `sample_size` timed samples (no outlier analysis, no plots);
//! results print as `bench-name ... mean ± stddev` lines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    /// In test mode (`cargo test` / `--test`) each closure runs once,
    /// untimed, so benches double as smoke tests.
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // One warm-up evaluation, then timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Internal: used by `criterion_main!` to honour CLI flags.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = self.test_mode || std::env::args().any(|a| a == "--test");
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, self.test_mode, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.test_mode,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.test_mode,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok (bench smoke)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let mean_s = mean.as_secs_f64();
    let var = b
        .samples
        .iter()
        .map(|d| {
            let x = d.as_secs_f64() - mean_s;
            x * x
        })
        .sum::<f64>()
        / b.samples.len() as f64;
    let sd = Duration::from_secs_f64(var.sqrt());
    println!(
        "{label:<50} {mean:>12.3?} ± {sd:<12.3?} ({} samples)",
        b.samples.len()
    );
}

/// Declares a group of benchmark functions, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            c = c.configure_from_args();
            $($target(&mut c);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // `--test`, filters); the mini-harness accepts and ignores them.
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        for &n in &[1u64, 2] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * 2));
            });
        }
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
