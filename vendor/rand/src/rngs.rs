//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++.
///
/// Mirrors the role of `rand::rngs::SmallRng` (which is xoshiro256++ on
/// 64-bit targets). Seeded through [`SeedableRng::seed_from_u64`] it expands
/// the seed with SplitMix64, so no all-zero state can occur.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state is a fixed point for xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

/// The "standard" RNG alias. In this vendored subset it is the same
/// generator as [`SmallRng`]; nothing in the repository requires the real
/// crate's ChaCha-based `StdRng`.
pub type StdRng = SmallRng;
