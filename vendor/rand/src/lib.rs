//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 surface), vendored so the workspace builds without network
//! access. Only the parts this repository uses are provided:
//!
//! * [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`,
//!   `gen_bool`, `fill`-style byte output);
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64.
//!
//! The generators are deterministic and high-quality, but make **no**
//! guarantee of bit-compatibility with the real `rand` crate. Every use in
//! this repository derives streams from explicit `u64` seeds, so determinism
//! within this codebase is what matters.

pub mod rngs;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Core RNG behaviour: raw word and byte output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction from a fixed-width seed or a `u64` shortcut.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same approach
    /// the real crate documents for seeding from small entropy).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Values producible "from the standard distribution" — the subset of
/// `rand::distributions::Standard` this repository relies on.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A value from the standard distribution (full-range integers,
    /// `[0, 1)` floats, fair booleans).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(0..17);
            assert!(v < 17);
            let w: usize = r.gen_range(3..=9);
            assert!((3..=9).contains(&w));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn float_standard_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_buffer() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
