//! Uniform sampling from ranges, without modulo bias for integers.

use crate::{RngCore, Standard};
use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform in `[low, high)`. `high` must be strictly greater than `low`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform in `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range arguments accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Unbiased `[0, span)` for a `u64` span via Lemire's multiply-shift with
/// rejection. `span == 0` encodes the full 2⁶⁴ range.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection keeps the multiply-shift exactly uniform; the zone (which
    // costs a 64-bit division) is only computed on the rare low-fraction
    // samples, since low >= span always lies outside the rejection zone.
    let mut m = (rng.next_u64() as u128).wrapping_mul(span as u128);
    if (m as u64) < span {
        let zone = span.wrapping_neg() % span; // 2^64 mod span
        while (m as u64) < zone {
            m = (rng.next_u64() as u128).wrapping_mul(span as u128);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = ((high as $u).wrapping_sub(low as $u) as u64).wrapping_add(1);
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = f64::sample_standard(rng);
        low + u * (high - low)
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // Splitting on the closed endpoint would change nothing observable;
        // treat inclusive float ranges like half-open ones.
        Self::sample_half_open(rng, low, high)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = f32::sample_standard(rng);
        low + u * (high - low)
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn signed_ranges() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..500 {
            let v: i32 = r.gen_range(-10..10);
            assert!((-10..10).contains(&v));
        }
    }

    #[test]
    fn full_span_inclusive_does_not_hang() {
        let mut r = SmallRng::seed_from_u64(6);
        let _: u64 = r.gen_range(0..=u64::MAX);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(1234);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
