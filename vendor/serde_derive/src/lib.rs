//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! Implemented directly on `proc_macro::TokenTree` (no `syn`/`quote`, which
//! are unavailable offline). Supports the shapes this repository uses and a
//! little headroom:
//!
//! * structs with named fields (including generic type parameters, which get
//!   `serde::Serialize` / `serde::Deserialize` bounds added);
//! * tuple structs and unit structs;
//! * enums with unit and tuple variants.
//!
//! Named structs map to `Value::Map`, tuple structs to `Value::Seq`, unit
//! variants to `Value::Str(name)`, and tuple variants to a one-entry map
//! `{name: [args...]}` (externally tagged, like real serde).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct GenericParam {
    /// `'a` for lifetimes, `T` for type params.
    name: String,
    /// Declared bounds (text after `:`), possibly empty.
    bounds: String,
    is_lifetime: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<GenericParam>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

// ---------------------------------------------------------------------------
// parsing

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind_kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found {other}"),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i);

    // Skip a `where` clause if present (none in this repo, but harmless).
    while i < tokens.len() {
        if let TokenTree::Group(_) = &tokens[i] {
            break;
        }
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == ';' {
                break;
            }
        }
        i += 1;
    }

    let kind = match kind_kw.as_str() {
        "struct" => {
            if i >= tokens.len() {
                Kind::Struct(Shape::Unit)
            } else if let TokenTree::Group(g) = &tokens[i] {
                match g.delimiter() {
                    Delimiter::Brace => Kind::Struct(Shape::Named(parse_named_fields(g.stream()))),
                    Delimiter::Parenthesis => {
                        Kind::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
                    }
                    _ => panic!("derive: unexpected struct body"),
                }
            } else {
                Kind::Struct(Shape::Unit)
            }
        }
        "enum" => {
            let body = match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive: expected enum body, found {other}"),
            };
            Kind::Enum(parse_variants(body))
        }
        other => panic!("derive: cannot derive for `{other}` items"),
    };

    Input {
        name,
        generics,
        kind,
    }
}

/// Advances past leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `<...>` if present. `i` points just past the type name on entry.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<GenericParam> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => *i += 1,
        _ => return params,
    }
    let mut depth = 0usize;
    let mut current: Vec<TokenTree> = Vec::new();
    loop {
        let tok = tokens
            .get(*i)
            .unwrap_or_else(|| panic!("derive: unterminated generics"));
        *i += 1;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' if depth == 0 => {
                    if !current.is_empty() {
                        params.push(parse_generic_param(&current));
                    }
                    return params;
                }
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    params.push(parse_generic_param(&current));
                    current.clear();
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
}

fn parse_generic_param(tokens: &[TokenTree]) -> GenericParam {
    let mut is_lifetime = false;
    let mut name = String::new();
    let mut bounds = String::new();
    let mut seen_colon = false;
    for tok in tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '\'' && name.is_empty() => {
                is_lifetime = true;
                name.push('\'');
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !seen_colon => seen_colon = true,
            TokenTree::Ident(id) if name.is_empty() || (name == "'" && is_lifetime) => {
                name.push_str(&id.to_string());
            }
            other if seen_colon => {
                bounds.push_str(&other.to_string());
                bounds.push(' ');
            }
            _ => {}
        }
    }
    GenericParam {
        name,
        bounds: bounds.trim().to_string(),
        is_lifetime,
    }
}

/// Field names of a `{ ... }` struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("derive: expected field name, found {other}"),
        };
        fields.push(name);
        // Skip `: Type` up to the next top-level comma.
        let mut depth = 0usize;
        i += 1;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' | '(' | '[' => depth += 1,
                    '>' | ')' | ']' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a `( ... )` tuple struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0usize;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Shape)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fs = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(fs)
            }
            _ => Shape::Unit,
        };
        // Skip a `= discriminant` and the separating comma.
        let mut depth = 0usize;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' | '(' | '[' => depth += 1,
                    '>' | ')' | ']' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        variants.push((name, shape));
    }
    variants
}

// ---------------------------------------------------------------------------
// code generation

/// `impl<...>` header pieces: (impl generics, type generics, where bounds).
fn generics_pieces(
    input: &Input,
    bound: &str,
    extra_lifetime: Option<&str>,
) -> (String, String, String) {
    let mut impl_params: Vec<String> = Vec::new();
    let mut ty_params: Vec<String> = Vec::new();
    let mut where_bounds: Vec<String> = Vec::new();

    if let Some(lt) = extra_lifetime {
        impl_params.push(lt.to_string());
    }
    for p in &input.generics {
        ty_params.push(p.name.clone());
        if p.is_lifetime {
            impl_params.push(p.name.clone());
        } else {
            let decl = if p.bounds.is_empty() {
                p.name.clone()
            } else {
                format!("{}: {}", p.name, p.bounds)
            };
            impl_params.push(decl);
            where_bounds.push(format!("{}: {}", p.name, bound));
        }
    }

    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics = if ty_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", ty_params.join(", "))
    };
    let where_clause = if where_bounds.is_empty() {
        String::new()
    } else {
        format!("where {}", where_bounds.join(", "))
    };
    (impl_generics, ty_generics, where_clause)
}

fn ser_shape_expr(shape: &Shape, accessor: impl Fn(usize, &str) -> String) -> String {
    match shape {
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Named(fields) => {
            let mut entries = Vec::new();
            for (idx, f) in fields.iter().enumerate() {
                entries.push(format!(
                    "({:?}.to_string(), serde::to_value(&{}).map_err(<__S::Error as serde::ser::Error>::custom)?)",
                    f,
                    accessor(idx, f)
                ));
            }
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(n) => {
            let mut entries = Vec::new();
            for idx in 0..*n {
                entries.push(format!(
                    "serde::to_value(&{}).map_err(<__S::Error as serde::ser::Error>::custom)?",
                    accessor(idx, "")
                ));
            }
            format!("serde::Value::Seq(vec![{}])", entries.join(", "))
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (impl_g, ty_g, where_c) = generics_pieces(&input, "serde::Serialize", None);
    let name = &input.name;

    let body = match &input.kind {
        Kind::Struct(shape) => {
            let expr = ser_shape_expr(shape, |idx, f| {
                if f.is_empty() {
                    format!("self.{idx}")
                } else {
                    format!("self.{f}")
                }
            });
            format!("serde::Serializer::serialize_value(__s, {expr})")
        }
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => arms.push(format!(
                        "{name}::{vname} => serde::Serializer::serialize_value(__s, serde::Value::Str({vname:?}.to_string())),"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let expr = ser_shape_expr(shape, |idx, _| format!("__f{idx}"));
                        arms.push(format!(
                            "{name}::{vname}({}) => serde::Serializer::serialize_value(__s, serde::Value::Map(vec![({vname:?}.to_string(), {expr})])),",
                            binders.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders = fields.join(", ");
                        let expr = ser_shape_expr(shape, |_, f| format!("(*{f})"));
                        arms.push(format!(
                            "{name}::{vname} {{ {binders} }} => serde::Serializer::serialize_value(__s, serde::Value::Map(vec![({vname:?}.to_string(), {expr})])),"
                        ));
                    }
                }
            }
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };

    let out = format!(
        "impl{impl_g} serde::Serialize for {name}{ty_g} {where_c} {{
            fn serialize<__S: serde::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{
                {body}
            }}
        }}"
    );
    out.parse()
        .expect("derive(Serialize): generated code must parse")
}

fn de_named_expr(type_path: &str, fields: &[String]) -> String {
    let mut inits = Vec::new();
    for f in fields {
        inits.push(format!(
            "{f}: match __take(&mut __m, {f:?}) {{
                Some(v) => serde::Deserialize::deserialize(serde::ValueDeserializer(v))
                    .map_err(<__D::Error as serde::de::Error>::custom)?,
                None => return Err(<__D::Error as serde::de::Error>::custom(concat!(\"missing field `\", {f:?}, \"`\"))),
            }}"
        ));
    }
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn de_tuple_expr(type_path: &str, n: usize) -> String {
    let mut inits = Vec::new();
    for _ in 0..n {
        inits.push(
            "serde::Deserialize::deserialize(serde::ValueDeserializer(__it.next().ok_or_else(|| <__D::Error as serde::de::Error>::custom(\"tuple too short\"))?)).map_err(<__D::Error as serde::de::Error>::custom)?".to_string(),
        );
    }
    format!("{type_path}({})", inits.join(", "))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (impl_g, ty_g, where_c) = generics_pieces(&input, "serde::Deserialize<'de>", Some("'de"));
    let name = &input.name;

    let take_helper =
        "fn __take(m: &mut Vec<(String, serde::Value)>, k: &str) -> Option<serde::Value> {
        m.iter().position(|(n, _)| n == k).map(|i| m.remove(i).1)
    }";

    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => format!("let _ = __v; Ok({name})"),
        Kind::Struct(Shape::Named(fields)) => format!(
            "{take_helper}
             let mut __m = match __v {{
                 serde::Value::Map(m) => m,
                 _ => return Err(<__D::Error as serde::de::Error>::custom(\"expected map\")),
             }};
             Ok({})",
            de_named_expr(name, fields)
        ),
        Kind::Struct(Shape::Tuple(n)) => format!(
            "let __items = match __v {{
                 serde::Value::Seq(s) => s,
                 _ => return Err(<__D::Error as serde::de::Error>::custom(\"expected sequence\")),
             }};
             let mut __it = __items.into_iter();
             Ok({})",
            de_tuple_expr(name, *n)
        ),
        Kind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => unit_arms.push(format!(
                        "{vname:?} => return Ok({name}::{vname}),"
                    )),
                    Shape::Tuple(n) => data_arms.push(format!(
                        "{vname:?} => {{
                            let __items = match __payload {{
                                serde::Value::Seq(s) => s,
                                _ => return Err(<__D::Error as serde::de::Error>::custom(\"expected sequence payload\")),
                            }};
                            let mut __it = __items.into_iter();
                            return Ok({});
                        }}",
                        de_tuple_expr(&format!("{name}::{vname}"), *n)
                    )),
                    Shape::Named(fields) => data_arms.push(format!(
                        "{vname:?} => {{
                            {take_helper}
                            let mut __m = match __payload {{
                                serde::Value::Map(m) => m,
                                _ => return Err(<__D::Error as serde::de::Error>::custom(\"expected map payload\")),
                            }};
                            return Ok({});
                        }}",
                        de_named_expr(&format!("{name}::{vname}"), fields)
                    )),
                }
            }
            format!(
                "match __v {{
                     serde::Value::Str(ref s) => {{
                         match s.as_str() {{
                             {}
                             _ => {{}}
                         }}
                         Err(<__D::Error as serde::de::Error>::custom(format!(\"unknown variant `{{s}}`\")))
                     }}
                     serde::Value::Map(m) if m.len() == 1 => {{
                         let (__tag, __payload) = m.into_iter().next().expect(\"length checked\");
                         match __tag.as_str() {{
                             {}
                             _ => {{}}
                         }}
                         Err(<__D::Error as serde::de::Error>::custom(format!(\"unknown variant `{{__tag}}`\")))
                     }}
                     _ => Err(<__D::Error as serde::de::Error>::custom(\"expected enum representation\")),
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };

    let out = format!(
        "impl{impl_g} serde::Deserialize<'de> for {name}{ty_g} {where_c} {{
            fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{
                #[allow(unused_variables)]
                let __v = serde::Deserializer::deserialize_value(__d)?;
                {body}
            }}
        }}"
    );
    out.parse()
        .expect("derive(Deserialize): generated code must parse")
}
