//! Offline, API-compatible subset of [`serde`](https://serde.rs), vendored so
//! the workspace builds without network access.
//!
//! The public trait shapes match real serde — `Serialize`/`Serializer` with
//! `Ok`/`Error` associated types, `Deserialize<'de>`/`Deserializer<'de>`, and
//! re-exported derive macros — so user code (manual impls, derives, bounds)
//! is source-compatible. Internally the data model is simplified: a
//! serializer consumes a self-describing [`Value`] tree rather than a
//! streaming visitor API. `serde_json` (also vendored) is the only data
//! format in the workspace and works directly on `Value`.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

mod impls;

/// The self-describing intermediate data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

/// The one concrete error type used across the vendored serde stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub mod ser {
    use std::fmt::Display;

    /// Errors producible by a serializer (mirror of `serde::ser::Error`).
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: Display>(msg: T) -> Self {
            super::Error(msg.to_string())
        }
    }
}

pub mod de {
    use std::fmt::Display;

    /// Errors producible by a deserializer (mirror of `serde::de::Error`).
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: Display>(msg: T) -> Self {
            super::Error(msg.to_string())
        }
    }

    /// `Deserialize` with no borrowed data — what owned formats require.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

/// A data format that can accept one [`Value`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Serializer that materialises the [`Value`] tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// Deserializer over an owned [`Value`] tree. Implements `Deserializer<'de>`
/// for every lifetime, so it can feed impls with any borrow expectation.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn deserialize_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Serializes `value` into the intermediate tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Deserializes a `T` out of an intermediate tree.
pub fn from_value<T: de::DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(value))
}
