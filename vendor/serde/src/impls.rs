//! `Serialize`/`Deserialize` impls for std types, plus the `Value`
//! conversion plumbing the derive macros lean on.

use crate::{de, ser, Deserialize, Deserializer, Serialize, Serializer, Value, ValueDeserializer};

// ---------------------------------------------------------------------------
// helpers

/// Serializes any `Serialize` into a `Value`, mapping the concrete error
/// into the caller's serializer error type.
pub fn subvalue<T: Serialize + ?Sized, E: ser::Error>(t: &T) -> Result<Value, E> {
    crate::to_value(t).map_err(|e| E::custom(e))
}

/// Deserializes a sub-`Value`, mapping errors into the caller's type.
pub fn from_subvalue<'de, T: Deserialize<'de>, E: de::Error>(v: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer(v)).map_err(|e| E::custom(e))
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    fn as_u64<E: de::Error>(&self) -> Result<u64, E> {
        match *self {
            Value::U64(v) => Ok(v),
            Value::I64(v) if v >= 0 => Ok(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(v as u64),
            _ => Err(E::custom(format!(
                "expected unsigned integer, got {}",
                self.type_name()
            ))),
        }
    }

    fn as_i64<E: de::Error>(&self) -> Result<i64, E> {
        match *self {
            Value::I64(v) => Ok(v),
            Value::U64(v) if v <= i64::MAX as u64 => Ok(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Ok(v as i64),
            _ => Err(E::custom(format!(
                "expected signed integer, got {}",
                self.type_name()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// primitives

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                let raw = v.as_u64::<D::Error>()?;
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::custom(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    s.serialize_value(Value::U64(v as u64))
                } else {
                    s.serialize_value(Value::I64(v))
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                let raw = v.as_i64::<D::Error>()?;
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::custom(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::F64(v) => Ok(v),
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            other => Err(de::Error::custom(format!(
                "expected float, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self as f64))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!(
                "expected bool, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Null)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(()),
            other => Err(de::Error::custom(format!(
                "expected null, got {}",
                other.type_name()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Value is itself serializable: it passes through unchanged, which lets
// callers work with dynamically-typed documents (`serde_json::from_str::
// <serde::Value>`) the way real serde_json's `Value` allows.

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value()
    }
}

// ---------------------------------------------------------------------------
// compound std types

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => s.serialize_value(subvalue::<_, S::Error>(v)?),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            v => Ok(Some(from_subvalue::<T, D::Error>(v)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(subvalue::<_, S::Error>(item)?);
        }
        s.serialize_value(Value::Seq(out))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| from_subvalue::<T, D::Error>(v))
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = match subvalue::<_, S::Error>(k)? {
                Value::Str(text) => text,
                Value::U64(n) => n.to_string(),
                Value::I64(n) => n.to_string(),
                other => {
                    return Err(ser::Error::custom(format!(
                        "map key must be string-like, got {}",
                        other.type_name()
                    )))
                }
            };
            out.push((key, subvalue::<_, S::Error>(v)?));
        }
        s.serialize_value(Value::Map(out))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(subvalue::<_, S::Error>(&self.$idx)?),+];
                s.serialize_value(Value::Seq(items))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match d.deserialize_value()? {
                    Value::Seq(items) if items.len() == LEN => {
                        let mut it = items.into_iter();
                        Ok(($(from_subvalue::<$name, D::Error>(it.next().expect("length checked"))?,)+))
                    }
                    Value::Seq(items) => Err(de::Error::custom(format!(
                        "expected tuple of length {LEN}, got sequence of {}",
                        items.len()
                    ))),
                    other => Err(de::Error::custom(format!(
                        "expected sequence, got {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
    (0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
}
