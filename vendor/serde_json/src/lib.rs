//! Offline JSON serialization for the vendored serde stub: `to_string`,
//! `to_string_pretty`, and `from_str` over [`serde::Value`].

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

pub use serde::Error;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error(format!("trailing characters at offset {}", p.i)));
    }
    serde::from_value(v)
}

// ---------------------------------------------------------------------------
// writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Make sure floats survive a round-trip as floats.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null"); // like serde_json's default behaviour
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items.iter(), items.len(), indent, level, write_value),
        Value::Map(entries) => write_map(out, entries, indent, level),
    }
}

fn write_seq<'a, T: 'a>(
    out: &mut String,
    items: impl Iterator<Item = &'a T>,
    len: usize,
    indent: Option<usize>,
    level: usize,
    write_item: impl Fn(&mut String, &'a T, Option<usize>, usize),
) {
    out.push('[');
    if len == 0 {
        out.push(']');
        return;
    }
    for (k, item) in items.enumerate() {
        if k > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_item(out, item, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, level: usize) {
    out.push('{');
    if entries.is_empty() {
        out.push('}');
        return;
    }
    for (k, (key, val)) in entries.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_string(out, key);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, val, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parser

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.i
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.i
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.i)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let scalar = match code {
                                // High surrogate: must pair with a trailing
                                // `\uDC00..=\uDFFF` (JSON encodes non-BMP
                                // characters as UTF-16 surrogate pairs).
                                0xD800..=0xDBFF => {
                                    if self.s.get(self.i) != Some(&b'\\')
                                        || self.s.get(self.i + 1) != Some(&b'u')
                                    {
                                        return Err(Error("unpaired high surrogate".into()));
                                    }
                                    self.i += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(Error("invalid low surrogate".into()));
                                    }
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(Error("unpaired low surrogate".into()))
                                }
                                c => c,
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let width = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.i - 1;
                    if start + width > self.s.len() {
                        return Err(Error("truncated UTF-8".into()));
                    }
                    let chunk = std::str::from_utf8(&self.s[start..start + width])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(chunk);
                    self.i = start + width;
                }
            }
        }
    }

    /// Four hex digits of a `\u` escape (the `\u` itself already consumed).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.i + 4 > self.s.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.i += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error("invalid number".into()))?;
        // Integer tokens that overflow u64/i64 fall back to f64, matching
        // real serde_json (and our own writer, which prints large integral
        // floats without a decimal point or exponent).
        let parsed = if float {
            text.parse::<f64>().ok().map(Value::F64)
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .ok()
                .map(Value::I64)
                .or_else(|| text.parse::<f64>().ok().map(Value::F64))
        } else {
            text.parse::<u64>()
                .ok()
                .map(Value::U64)
                .or_else(|| text.parse::<f64>().ok().map(Value::F64))
        };
        parsed.ok_or_else(|| Error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.i))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at offset {}", self.i))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
    }

    #[test]
    fn roundtrip_compound() {
        let v: (u64, Vec<(u32, u32)>) = (3, vec![(0, 1), (1, 2)]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[3,[[0,1],[1,2]]]");
        let back: (u64, Vec<(u32, u32)>) = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = to_string(&"a\"b\\c\nd".to_string()).unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn unicode_roundtrip() {
        let text = "héllo ∀x∈S".to_string();
        let back: String = from_str(&to_string(&text).unwrap()).unwrap();
        assert_eq!(back, text);
    }

    #[test]
    fn huge_integral_float_roundtrips() {
        let s = to_string(&1e20f64).unwrap();
        assert_eq!(s, "100000000000000000000");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1e20);
        let neg: f64 = from_str("-100000000000000000000").unwrap();
        assert_eq!(neg, -1e20);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let back: String = from_str(r#""😀""#).unwrap();
        assert_eq!(back, "😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err()); // unpaired high
        assert!(from_str::<String>(r#""\ude00""#).is_err()); // unpaired low
        assert!(from_str::<String>(r#""\ud83dx""#).is_err()); // high + garbage
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("42 junk").is_err());
    }

    #[test]
    fn pretty_output_indents() {
        let v: Vec<u32> = vec![1, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn option_null() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }
}
