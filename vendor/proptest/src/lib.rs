//! Offline, API-compatible subset of [`proptest`](https://proptest-rs.github.io/),
//! vendored so the workspace builds without network access.
//!
//! Provides the `proptest!` macro, `Strategy` (with `prop_map`), `any`,
//! range and tuple strategies, `collection::vec`, and the `prop_assert*`
//! macros. Compared to the real crate there is **no shrinking** and no
//! failure persistence: a failing case panics immediately with the case
//! index in the panic message (cases are deterministic per test name, so a
//! failure is reproducible by rerunning the test).

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;

/// Deterministic per-test RNG. Each test derives its stream from the hash
/// of its name, so runs are reproducible without any persisted state.
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Test-runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for source compatibility; this mini-framework never
    /// persists failures (cases are deterministic per test name).
    pub failure_persistence: Option<Box<dyn std::any::Any>>,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; strategies here never reject.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            failure_persistence: None,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Object-safe face of [`Strategy`], so heterogeneous strategies with a
/// common `Value` can live in one collection (what `prop_oneof!` builds).
pub trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between strategies (the stub's `prop_oneof!` backend;
/// the real crate's weighted form is not supported).
pub struct Union<T>(pub Vec<Box<dyn DynStrategy<T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate_dyn(rng)
    }
}

/// `prop_oneof![a, b, c]` — picks one of the arm strategies uniformly per
/// case. All arms must share a `Value` type. Weighted arms (`w => s`) from
/// the real crate are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![
            $(Box::new($strategy) as Box<dyn $crate::DynStrategy<_>>),+
        ])
    };
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $gen:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.$gen() as $t
            }
        }
    )*};
}

impl_arbitrary_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Strategy for "any value of `A`".
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        DynStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// The test-declaration macro. Mirrors real proptest syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0u64..100, (a, b) in my_strategy()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }));
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest: case {}/{} of `{}` failed (deterministic per test name; rerun to reproduce)",
                        __case + 1, __cfg.cases, stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4, f in 0.5f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.5..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0u32..10, 10u32..20)) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn vec_sizes(v in collection::vec(any::<u64>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(s in (1u64..10).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0);
            prop_assert!((2..20).contains(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        #[test]
        fn config_accepted(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("abc");
        let mut b = TestRng::deterministic("abc");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
