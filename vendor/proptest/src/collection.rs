//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::{Strategy, TestRng};

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(strategy, range)` — a vector with length in `range`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
