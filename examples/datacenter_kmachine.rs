//! Data-center scenario (Appendix A): the k-machine model.
//!
//! A graph too large for one server is vertex-partitioned over `k`
//! machines; inter-machine links carry `O(log n)` bits per round. Appendix
//! A shows any NCC algorithm transfers at `Õ(n·T/k²)` cost — this example
//! runs a live MIS computation under the first-class `KMachine` execution
//! model (one `with_model` line on the scenario spec) and prints the
//! charged k-machine rounds for a sweep of cluster sizes.
//!
//! ```text
//! cargo run --release --example datacenter_kmachine
//! ```

use ncc::core::{build_broadcast_trees, mis};
use ncc::graph::check;
use ncc::hashing::SharedRandomness;
use ncc::kmachine::KMachineModel;
use ncc::model::ModelSpec;
use ncc::runner::{FamilySpec, ScenarioSpec};

pub fn main() {
    // the workload as data: a sparse G(n,p) scenario; seed 13 drives the
    // engine and the random vertex partition
    let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.04 }, 256, 13);
    let scenario = spec.build().expect("buildable spec");
    let g = &scenario.graph;
    let n = g.n();
    println!("graph: n = {n}, m = {}", g.m());
    println!("\n k | ncc rounds | k-machine rounds | cross-machine msgs | bottleneck link");
    println!("---|------------|------------------|--------------------|----------------");

    for k in [2usize, 4, 8, 16] {
        // one fresh engine per cluster size — identical each time by spec
        let scenario = spec
            .clone()
            .with_model(ModelSpec::KMachine {
                k,
                link_capacity: 1,
            })
            .build()
            .expect("buildable spec");
        let mut engine = scenario.engine();

        let shared = SharedRandomness::new(0xDC);
        let (bt, _) = build_broadcast_trees(&mut engine, &shared, g).unwrap();
        let r = mis(&mut engine, &shared, &bt, g).unwrap();
        check::check_mis(g, &r.in_mis).expect("mis invalid");

        // the model charged km_rounds into the engine's running stats;
        // the full link-load report is a downcast away
        let rep = engine
            .model()
            .as_any()
            .downcast_ref::<KMachineModel>()
            .expect("kmachine model")
            .report();
        assert_eq!(rep.km_rounds, engine.total.km_rounds);
        println!(
            "{:>2} | {:>10} | {:>16} | {:>18} | {:>15}",
            k, rep.ncc_rounds, rep.km_rounds, rep.cross_messages, rep.max_pair_load
        );
    }
    println!("\nk-machine rounds fall ≈ k²-fold per doubling of k until the per-round");
    println!("synchronisation floor (one k-machine round per NCC round) dominates —");
    println!("exactly the Õ(n·T/k²) shape of Corollary 2.");
}
