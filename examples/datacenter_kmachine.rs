//! Data-center scenario (Appendix A): the k-machine model.
//!
//! A graph too large for one server is vertex-partitioned over `k`
//! machines; inter-machine links carry `O(log n)` bits per round. Appendix
//! A shows any NCC algorithm transfers at `Õ(n·T/k²)` cost — this example
//! attaches the conversion sink to a live MIS computation and prints the
//! charged k-machine rounds for a sweep of cluster sizes.
//!
//! ```text
//! cargo run --release --example datacenter_kmachine
//! ```

use ncc::core::{build_broadcast_trees, mis};
use ncc::graph::check;
use ncc::hashing::SharedRandomness;
use ncc::kmachine::{KMachineCost, SharedSink};
use ncc::runner::{FamilySpec, ScenarioSpec};

pub fn main() {
    // the workload as data: a sparse G(n,p) scenario; seed 13 drives the
    // engine, seed-derived weights are unused here
    let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.04 }, 256, 13);
    let scenario = spec.build().expect("buildable spec");
    let g = &scenario.graph;
    let n = g.n();
    println!("graph: n = {n}, m = {}", g.m());
    println!("\n k | ncc rounds | k-machine rounds | cross-machine msgs | bottleneck link");
    println!("---|------------|------------------|--------------------|----------------");

    for k in [2usize, 4, 8, 16] {
        // one fresh engine per cluster size — identical each time by spec
        let mut engine = scenario.engine();
        let (sink, handle) = SharedSink::new(KMachineCost::with_random_assignment(n, k, 99, 1));
        engine.set_sink(Box::new(sink));

        let shared = SharedRandomness::new(0xDC);
        let (bt, _) = build_broadcast_trees(&mut engine, &shared, g).unwrap();
        let r = mis(&mut engine, &shared, &bt, g).unwrap();
        check::check_mis(g, &r.in_mis).expect("mis invalid");

        let rep = handle.lock().unwrap().report();
        println!(
            "{:>2} | {:>10} | {:>16} | {:>18} | {:>15}",
            k, rep.ncc_rounds, rep.km_rounds, rep.cross_messages, rep.max_pair_load
        );
    }
    println!("\nk-machine rounds fall ≈ k²-fold per doubling of k until the per-round");
    println!("synchronisation floor (one k-machine round per NCC round) dominates —");
    println!("exactly the Õ(n·T/k²) shape of Corollary 2.");
}
