//! Social-network scenario: symmetry breaking on a heavy-tailed overlay.
//!
//! The paper's introduction motivates the NCC model with overlay networks
//! whose input graphs are e.g. social relations — low arboricity, but with
//! hubs whose degree far exceeds any node's communication capacity. This
//! example describes the workload with the [`ScenarioSpec`] builder
//! (Barabási–Albert family), runs the full §5 pipeline (orientation →
//! broadcast trees → MIS, maximal matching, O(a)-coloring), and shows that
//! rounds track the *arboricity*, not the hub degrees.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use ncc::core::{build_broadcast_trees, coloring, maximal_matching, mis};
use ncc::graph::{analysis, check};
use ncc::hashing::SharedRandomness;
use ncc::runner::{FamilySpec, ScenarioSpec};

pub fn main() {
    let spec = ScenarioSpec::new(FamilySpec::Ba { m: 3 }, 256, 42);
    let scenario = spec.build().expect("buildable spec");
    let g = &scenario.graph;
    let (alo, ahi) = analysis::arboricity_bounds(g);
    println!(
        "BA graph ({}): m = {}, max degree = {} (hub!), arboricity ∈ [{alo},{ahi}]",
        spec.label(),
        g.m(),
        g.max_degree()
    );

    let mut engine = scenario.engine();
    let shared = SharedRandomness::new(0x50C1A1);
    let (bt, setup_report) = build_broadcast_trees(&mut engine, &shared, g).unwrap();
    println!(
        "orientation: max outdegree {} (O(a), despite Δ = {}), {} phases; setup {} rounds",
        bt.orientation.max_outdegree(),
        g.max_degree(),
        bt.orientation.phases,
        setup_report.total.rounds
    );

    let r = mis(&mut engine, &shared, &bt, g).unwrap();
    check::check_mis(g, &r.in_mis).expect("MIS invalid");
    println!(
        "MIS: {} nodes, {} phases, {} rounds ✓",
        r.in_mis.iter().filter(|&&b| b).count(),
        r.phases,
        r.report.total.rounds
    );

    let m = maximal_matching(&mut engine, &shared, &bt, g).unwrap();
    check::check_matching(g, &m.mate).expect("matching invalid");
    println!(
        "matching: {} pairs, {} phases, {} rounds ✓",
        m.mate.iter().filter(|x| x.is_some()).count() / 2,
        m.phases,
        m.report.total.rounds
    );

    let c = coloring(&mut engine, &shared, &bt.orientation, g).unwrap();
    check::check_coloring(g, &c.colors, c.palette).expect("coloring invalid");
    println!(
        "coloring: {} colors from a palette of {} = O(a) — NOT O(Δ) = {} ✓ ({} rounds)",
        c.colors.iter().max().unwrap() + 1,
        c.palette,
        g.max_degree() + 1,
        c.report.total.rounds
    );

    assert!(engine.total.clean(), "capacity respected throughout");
    println!(
        "total: {} rounds, peak load {}/{} msgs per node-round, 0 drops",
        engine.total.rounds,
        engine.total.peak_load(),
        engine.config().capacity.send
    );
}
