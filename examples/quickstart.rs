//! Quickstart: the five-minute tour of the Node-Capacitated Clique stack.
//!
//! Describes a scenario as *data* with the [`ScenarioSpec`] builder, spins
//! up the capacity-limited network, agrees on shared randomness
//! **in-model**, computes an MST with the §3 algorithm, verifies it
//! against Kruskal — then shows the same run as a one-liner through the
//! algorithm registry.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ncc::butterfly::broadcast_seed;
use ncc::core::mst;
use ncc::graph::check;
use ncc::hashing::SharedRandomness;
use ncc::runner::{run_named, FamilySpec, ScenarioSpec};

pub fn main() {
    // 1. A scenario is a serializable value: graph family, n, seed,
    //    capacity, weight range. It deterministically rebuilds the input
    //    graph G (every node initially knows only its own neighborhood,
    //    §1.1) and the configured network.
    let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.08 }, 128, 7);
    let scenario = spec.build().expect("buildable spec");
    println!(
        "scenario {}: m = {}, max degree = {}",
        spec.label(),
        scenario.graph.m(),
        scenario.graph.max_degree()
    );

    // 2. The Node-Capacitated Clique: every node may send/receive at most
    //    O(log n) messages of O(log n) bits per round. The engine enforces
    //    the caps and meters every round.
    let mut engine = scenario.engine();
    let cap = engine.config().capacity;
    println!(
        "capacity: {} msgs/round/node, {} bits/msg",
        cap.send, cap.payload_bits
    );

    // 3. Agree on shared randomness by broadcasting Θ(log² n) bits from
    //    node 0 over the emulated butterfly (§2.2) — a real protocol run,
    //    charged rounds like everything else.
    let n = scenario.graph.n();
    let k = SharedRandomness::k_for(n);
    let bits = SharedRandomness::bits_required(n, 16, k);
    let (shared, seed_stats) = broadcast_seed(&mut engine, 0xC0FFEE, bits).unwrap();
    println!("seed agreement: {} rounds", seed_stats.rounds);

    // 4. Run the §3 MST algorithm: Boruvka + sketch-based FindMin, all
    //    communication through the capacity-limited clique.
    let result = mst(&mut engine, &shared, scenario.weighted()).expect("mst failed");
    println!(
        "MST: {} edges in {} Boruvka phases, {} rounds total",
        result.edges.len(),
        result.phases,
        result.report.total.rounds
    );

    // 5. Verify against the centralised reference.
    check::check_mst(scenario.weighted(), &result.edges).expect("MST invalid");
    let weight = scenario.weighted().total_weight(&result.edges);
    println!(
        "verified ✓  (weight {weight} == Kruskal weight {})",
        check::kruskal_mst_weight(scenario.weighted())
    );

    // 6. Model compliance: nothing was dropped, nobody exceeded the cap.
    let total = engine.total;
    println!(
        "model compliance: peak load {} msgs/node/round (cap {}), drops {}",
        total.peak_load(),
        cap.send,
        total.dropped
    );
    assert!(total.clean());

    // 7. The same run as one registry call: engine construction, in-model
    //    seed agreement, the algorithm, and the checker, all behind
    //    `run_named` — the record echoes the spec and serializes to JSON.
    let record = run_named("mst", &spec).expect("registry run");
    println!(
        "registry one-liner: {} — {} rounds, verdict {:?}",
        record.summary, record.rounds, record.verdict
    );
    assert!(record.verdict.ok());
}
