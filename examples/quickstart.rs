//! Quickstart: the five-minute tour of the Node-Capacitated Clique stack.
//!
//! Builds a weighted random graph, spins up the capacity-limited network,
//! agrees on shared randomness **in-model**, computes an MST with the §3
//! algorithm, and verifies it against Kruskal.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ncc::butterfly::broadcast_seed;
use ncc::core::mst;
use ncc::graph::{check, gen};
use ncc::hashing::SharedRandomness;
use ncc::model::{Engine, NetConfig};

pub fn main() {
    let n = 128;
    let seed = 7;

    // 1. An input graph G on the same node set as the network: every node
    //    initially knows only its own neighborhood (§1.1).
    let g = gen::gnp(n, 0.08, seed);
    let wg = gen::with_random_weights(&g, (n * n) as u64, seed + 1);
    println!(
        "input graph: n = {}, m = {}, max degree = {}",
        wg.n(),
        wg.m(),
        g.max_degree()
    );

    // 2. The Node-Capacitated Clique: every node may send/receive at most
    //    O(log n) messages of O(log n) bits per round. The engine enforces
    //    the caps and meters every round.
    let mut engine = Engine::new(NetConfig::new(n, seed + 2));
    let cap = engine.config().capacity;
    println!(
        "capacity: {} msgs/round/node, {} bits/msg",
        cap.send, cap.payload_bits
    );

    // 3. Agree on shared randomness by broadcasting Θ(log² n) bits from
    //    node 0 over the emulated butterfly (§2.2) — a real protocol run,
    //    charged rounds like everything else.
    let k = SharedRandomness::k_for(n);
    let bits = SharedRandomness::bits_required(n, 16, k);
    let (shared, seed_stats) = broadcast_seed(&mut engine, 0xC0FFEE, bits).unwrap();
    println!("seed agreement: {} rounds", seed_stats.rounds);

    // 4. Run the §3 MST algorithm: Boruvka + sketch-based FindMin, all
    //    communication through the capacity-limited clique.
    let result = mst(&mut engine, &shared, &wg).expect("mst failed");
    println!(
        "MST: {} edges in {} Boruvka phases, {} rounds total",
        result.edges.len(),
        result.phases,
        result.report.total.rounds
    );

    // 5. Verify against the centralised reference.
    check::check_mst(&wg, &result.edges).expect("MST invalid");
    let weight = wg.total_weight(&result.edges);
    println!(
        "verified ✓  (weight {weight} == Kruskal weight {})",
        check::kruskal_mst_weight(&wg)
    );

    // 6. Model compliance: nothing was dropped, nobody exceeded the cap.
    let total = engine.total;
    println!(
        "model compliance: peak load {} msgs/node/round (cap {}), drops {}",
        total.peak_load(),
        cap.send,
        total.dropped
    );
    assert!(total.clean());
}
