//! Hybrid-network scenario (§1): cheap ad-hoc links + a capacitated overlay.
//!
//! Cell phones communicate for free over short-range WiFi (the input graph
//! `G` — here a planar grid, the classic ad-hoc topology) and additionally
//! own costly cellular links, modelled as the Node-Capacitated Clique. The
//! question from the paper: how fast can global structure over the *cheap*
//! graph be computed using the *capacitated* overlay? This example builds a
//! BFS tree (routing structure toward a gateway) and compares the round
//! count against the naive approach that only floods the overlay directly.
//!
//! ```text
//! cargo run --release --example hybrid_network
//! ```

use ncc::baselines::naive_bfs;
use ncc::core::{bfs, build_broadcast_trees};
use ncc::graph::{analysis, check};
use ncc::hashing::SharedRandomness;
use ncc::model::ModelSpec;
use ncc::runner::{FamilySpec, Scenario, ScenarioSpec};

pub fn main() {
    let (rows, cols) = (16, 16);
    // the mesh as data: a triangulated-grid scenario spec, executed under
    // the §1 hybrid model — the mesh edges are free CONGEST-style WiFi
    // links, everything else pays the capacitated cellular overlay
    let spec = ScenarioSpec::new(FamilySpec::TGrid { rows, cols }, rows * cols, 11)
        .with_model(ModelSpec::HybridLocal { local_edge_cap: 8 });
    let scenario = spec.build().expect("buildable spec");
    let g = &scenario.graph;
    let n = g.n();
    let gateway = 0;
    println!(
        "ad-hoc mesh: {rows}×{cols} triangulated grid, D = {}, planar (a ≤ 3)",
        analysis::diameter(g)
    );

    // primitive stack: orientation → broadcast trees → layered BFS,
    // driven under the hybrid network model
    let mut engine = scenario.engine();
    let shared = SharedRandomness::new(0x4242);
    let (bt, setup) = build_broadcast_trees(&mut engine, &shared, g).unwrap();
    let r = bfs(&mut engine, &shared, &bt, g, gateway).unwrap();
    check::check_bfs(g, gateway, &r.dist, &r.parent).expect("bfs invalid");
    let stack_rounds = setup.total.rounds + r.report.total.rounds;
    println!(
        "BFS tree via primitives: {} phases, {stack_rounds} rounds (setup {} + bfs {})",
        r.phases, setup.total.rounds, r.report.total.rounds
    );
    println!(
        "hybrid model: peak local-edge load {} (mesh links), {} drops",
        engine.total.max_edge_load, engine.total.dropped
    );

    // the farthest phone and its route to the gateway
    let far = (0..n).max_by_key(|&v| r.dist[v]).unwrap();
    let mut route = vec![far as u32];
    while let Some(p) = r.parent[*route.last().unwrap() as usize] {
        route.push(p);
    }
    println!(
        "farthest phone {far} at distance {}; route to gateway: {route:?}",
        r.dist[far]
    );

    // naive baseline: every frontier phone messages each mesh neighbor
    // directly over the overlay (TDMA-scheduled to respect capacity);
    // same scenario, different seed — still one builder line
    let mut engine = Scenario::from_graph(spec.with_seed(12), g.clone()).engine();
    let naive = naive_bfs(&mut engine, g, gateway).unwrap();
    check::check_bfs(g, gateway, &naive.dist, &naive.parent).expect("naive invalid");
    println!(
        "naive direct-overlay BFS: {} rounds ({}× the primitive stack on this mesh)",
        naive.stats.rounds,
        naive.stats.rounds as f64 / stack_rounds as f64
    );
    println!("(the gap grows with n — see experiment E16 for star-topology worst cases)");
}
