#!/usr/bin/env bash
# Runs the Table-1 experiment and snapshots its measurements to
# BENCH_exp01.json at the repo root — the first file of the
# perf-trajectory history the ROADMAP asks every perf PR to extend.
#
# Usage: ./bench.sh [extra cargo run args...]
set -euo pipefail
cd "$(dirname "$0")"

cargo run --release -p ncc-bench --bin exp01_table1 -- --json BENCH_exp01.json "$@"

echo
echo "snapshot written to BENCH_exp01.json:"
head -n 20 BENCH_exp01.json
