#!/usr/bin/env bash
# Runs the Table-1 experiment and snapshots its measurements to
# BENCH_exp01.json at the repo root — the first file of the
# perf-trajectory history the ROADMAP asks every perf PR to extend.
#
# Usage:
#   ./bench.sh [extra cargo run args...]
#       refresh BENCH_exp01.json in place
#   ./bench.sh --compare <baseline.json> [extra cargo run args...]
#       run fresh into BENCH_exp01.fresh.json, print a per-metric delta
#       table against the baseline, and exit non-zero on drift of any
#       deterministic field (rounds, drops, max_load, verified — not
#       wall-clock). Used by the `bench-gate` CI job.
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--compare" ]]; then
    baseline="${2:?--compare needs a baseline json path}"
    shift 2
    fresh="BENCH_exp01.fresh.json"
    cargo run --release -p ncc-bench --bin exp01_table1 -- --json "$fresh" "$@"
    echo
    cargo run --release -p ncc-bench --bin bench_compare -- "$baseline" "$fresh"
else
    cargo run --release -p ncc-bench --bin exp01_table1 -- --json BENCH_exp01.json "$@"
    echo
    echo "snapshot written to BENCH_exp01.json:"
    head -n 20 BENCH_exp01.json
fi
