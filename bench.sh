#!/usr/bin/env bash
# Snapshots the deterministic experiment measurements the CI bench gate
# diffs — the perf-trajectory history the ROADMAP asks every perf PR to
# extend:
#
#   BENCH_exp01.json  the Table-1 experiment (exp01_table1 --json)
#   BENCH_suite.json  the whole runner registry over the standard
#                     scenario grid (ncc-cli suite), including the model
#                     dimension: every cell names its execution model
#                     (ncc / congested-clique / kmachine / hybrid) and the
#                     model rows carry km_rounds + max_edge_load
#   BENCH_serve.json  the serve-layer load experiment (exp21_serve_load):
#                     sustained scenarios/sec and latency percentiles
#                     through the resident coordinator. Marked
#                     `wall_clock: true`, so bench_compare *reports* it
#                     (and still fails on any Failed verdict) but never
#                     gates on its machine-dependent timing numbers.
#   BENCH_scale.json  the huge-graph sweep (exp22_scale): RMAT +
#                     hyperbolic at n ∈ {10⁴,10⁵,10⁶}, the n=10⁷ RMAT
#                     broadcast row (generate + run, end-to-end), and
#                     the sparse-tail dense-vs-dirty-set speedup; each
#                     cell records gen_wall_ms and the warm engine's
#                     resident_bytes_per_node. Also `wall_clock: true`
#                     (reported, not diffed); the refresh runs the full
#                     sweep including the 10⁷ row (~minutes), the
#                     --compare path runs the --smoke cells like CI
#                     (BFS at 10⁴ + the parallel-generation identity
#                     check).
#
# Usage:
#   ./bench.sh [extra cargo run args...]
#       refresh all four snapshots in place
#   ./bench.sh --bless
#       same refresh, by its gate-facing name: `rounds` is a headline
#       metric, so the CI gate *allows* round-count improvements but keeps
#       failing until the faster numbers are blessed into the committed
#       snapshots — run this, review the deltas, commit the result.
#   ./bench.sh --compare <exp01-baseline.json> [<suite-baseline.json>]
#                        [<serve-baseline.json>] [<scale-baseline.json>]
#       run fresh into BENCH_*.fresh.json and print per-record tables with
#       a rounds-delta column. Exit non-zero on perf *regressions* (round
#       counts up), on drift of any other deterministic field at equal
#       rounds, or on a degraded correctness verdict; round-count
#       *improvements* pass (bless them in with `./bench.sh --bless`).
#       Never compares wall-clock. Used by the `bench-gate` CI job.
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--bless" ]]; then
    shift # --bless is the refresh path under its gate-facing name
fi

if [[ "${1:-}" == "--compare" ]]; then
    exp01_baseline="${2:?--compare needs an exp01 baseline json path}"
    shift 2
    suite_baseline="BENCH_suite.json"
    if [[ $# -gt 0 && "$1" != --* ]]; then
        suite_baseline="$1"
        shift
    fi
    serve_baseline="BENCH_serve.json"
    if [[ $# -gt 0 && "$1" != --* ]]; then
        serve_baseline="$1"
        shift
    fi
    scale_baseline="BENCH_scale.json"
    if [[ $# -gt 0 && "$1" != --* ]]; then
        scale_baseline="$1"
        shift
    fi
    exp01_fresh="BENCH_exp01.fresh.json"
    suite_fresh="BENCH_suite.fresh.json"
    serve_fresh="BENCH_serve.fresh.json"
    scale_fresh="BENCH_scale.fresh.json"
    cargo run --release -p ncc-bench --bin exp01_table1 -- --json "$exp01_fresh" "$@"
    echo
    cargo run --release -p ncc --bin ncc-cli -- suite --out "$suite_fresh" "$@"
    echo
    cargo run --release -p ncc-bench --bin exp21_serve_load -- --smoke --json "$serve_fresh"
    echo
    cargo run --release -p ncc-bench --bin exp22_scale -- --smoke --json "$scale_fresh"
    echo
    cargo run --release -p ncc-bench --bin bench_compare -- "$exp01_baseline" "$exp01_fresh"
    echo
    cargo run --release -p ncc-bench --bin bench_compare -- "$suite_baseline" "$suite_fresh"
    echo
    # wall_clock marker => reported, not gated (verdicts still checked)
    cargo run --release -p ncc-bench --bin bench_compare -- "$serve_baseline" "$serve_fresh"
    echo
    cargo run --release -p ncc-bench --bin bench_compare -- "$scale_baseline" "$scale_fresh"
else
    cargo run --release -p ncc-bench --bin exp01_table1 -- --json BENCH_exp01.json "$@"
    echo
    cargo run --release -p ncc --bin ncc-cli -- suite --out BENCH_suite.json "$@"
    echo
    cargo run --release -p ncc-bench --bin exp21_serve_load -- --smoke --json BENCH_serve.json
    echo
    cargo run --release -p ncc-bench --bin exp22_scale -- --json BENCH_scale.json
    echo
    echo "snapshots written to BENCH_exp01.json + BENCH_suite.json + BENCH_serve.json + BENCH_scale.json:"
    head -n 12 BENCH_exp01.json
    head -n 12 BENCH_suite.json
    head -n 12 BENCH_serve.json
    head -n 12 BENCH_scale.json
fi
