#!/usr/bin/env bash
# Snapshots the deterministic experiment measurements the CI bench gate
# diffs — the perf-trajectory history the ROADMAP asks every perf PR to
# extend:
#
#   BENCH_exp01.json  the Table-1 experiment (exp01_table1 --json)
#   BENCH_suite.json  the whole runner registry over the standard
#                     scenario grid (ncc-cli suite), including the model
#                     dimension: every cell names its execution model
#                     (ncc / congested-clique / kmachine / hybrid) and the
#                     model rows carry km_rounds + max_edge_load
#
# Usage:
#   ./bench.sh [extra cargo run args...]
#       refresh both snapshots in place
#   ./bench.sh --bless
#       same refresh, by its gate-facing name: `rounds` is a headline
#       metric, so the CI gate *allows* round-count improvements but keeps
#       failing until the faster numbers are blessed into the committed
#       snapshots — run this, review the deltas, commit the result.
#   ./bench.sh --compare <exp01-baseline.json> [<suite-baseline.json>]
#       run fresh into BENCH_*.fresh.json and print per-record tables with
#       a rounds-delta column. Exit non-zero on perf *regressions* (round
#       counts up), on drift of any other deterministic field at equal
#       rounds, or on a degraded correctness verdict; round-count
#       *improvements* pass (bless them in with `./bench.sh --bless`).
#       Never compares wall-clock. Used by the `bench-gate` CI job.
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--bless" ]]; then
    shift # --bless is the refresh path under its gate-facing name
fi

if [[ "${1:-}" == "--compare" ]]; then
    exp01_baseline="${2:?--compare needs an exp01 baseline json path}"
    shift 2
    suite_baseline="BENCH_suite.json"
    if [[ $# -gt 0 && "$1" != --* ]]; then
        suite_baseline="$1"
        shift
    fi
    exp01_fresh="BENCH_exp01.fresh.json"
    suite_fresh="BENCH_suite.fresh.json"
    cargo run --release -p ncc-bench --bin exp01_table1 -- --json "$exp01_fresh" "$@"
    echo
    cargo run --release -p ncc --bin ncc-cli -- suite --out "$suite_fresh" "$@"
    echo
    cargo run --release -p ncc-bench --bin bench_compare -- "$exp01_baseline" "$exp01_fresh"
    echo
    cargo run --release -p ncc-bench --bin bench_compare -- "$suite_baseline" "$suite_fresh"
else
    cargo run --release -p ncc-bench --bin exp01_table1 -- --json BENCH_exp01.json "$@"
    echo
    cargo run --release -p ncc --bin ncc-cli -- suite --out BENCH_suite.json "$@"
    echo
    echo "snapshots written to BENCH_exp01.json + BENCH_suite.json:"
    head -n 12 BENCH_exp01.json
    head -n 12 BENCH_suite.json
fi
